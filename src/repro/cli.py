"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiment <name>``
    Run one experiment driver (``fig1``, ``intro``, ``fig4``, ``fig5``,
    ``fig6``, ``fig7``, ``bounds``, ``ablations``) and print its table --
    the same output the benchmarks persist under ``benchmarks/results/``.

``calibrate``
    Measure the paper view's batch cost functions on a freshly generated
    TPC-R database and print the samples and linear fits.

``generate``
    dbgen mode: emit TPC-R tables as pipe-delimited ``.tbl`` files.

``sql``
    Run a SQL query against a freshly loaded TPC-R database; ``--explain``
    prints the physical plan instead of executing.

``explain``
    Print the physical plan of a SQL query; ``--analyze`` executes it and
    renders the per-operator EXPLAIN ANALYZE tree (rows, blocks,
    simulated charge breakdown, wall time, worker spread).

``why``
    Render the planner's decision trail as a text tree: per step, the
    backlog the policy saw, every candidate action with its predicted
    ``f(q)`` cost, the chosen action, the winning comparison, and --
    once the step executed -- the actual cost and residual.  Reads a
    ``--decision-log`` JSONL file with ``--log``; without one it runs a
    small sample simulation on the paper's workload.  ``--view`` and
    ``--step`` filter the trail.

``control-log``
    Render the adaptive runtime's control trail as a text tree: every
    actuation a governor made (policy switches, worker-pool resizes,
    block-size changes) with its reason and the signal values it acted
    on.  Reads a ``--control-log`` JSONL file with ``--log``; without
    one it runs a small adaptive sample on the paper's workload under
    SLO pressure.  ``--governor`` and ``--view`` filter the trail.

``control-ablation``
    Run the closed-loop ablation: baseline (no controller), the full
    loop, and one run per disabled governor over the same bursty
    SLO-pressure workload, then print the variants and each governor's
    ranked contribution (breaches and wall time vs the full loop).

Observability (any subcommand)
------------------------------

``--metrics``
    Install a :mod:`repro.obs` recorder for the run and print its metrics
    summary table on exit.

``--trace FILE``
    Additionally record nested wall-clock spans and export the run as
    Chrome-trace-compatible JSONL (view in ``chrome://tracing`` or
    Perfetto); implies ``--metrics``.  See ``docs/observability.md``.

``--serve-metrics PORT``
    Serve the live registry over HTTP while the subcommand runs:
    ``/metrics`` (Prometheus text format), ``/healthz``, ``/snapshot``,
    ``/samples``.  Port 0 picks a free port (printed to stderr).
    Implies ``--metrics``.

``--flight-recorder FILE``
    Run a background sampler snapshotting the registry into a bounded
    ring buffer (``--flight-interval-ms`` apart) and dump it as JSONL on
    exit -- backlog-vs-time curves without bespoke experiment code.
    Implies ``--metrics``.

``--profile FILE``
    Install a global query-profile sink for the run: every query any
    Database executes is attributed per operator and appended to FILE as
    JSONL (one profile dict per query).  Independent of ``--metrics``.

``--decision-log FILE``
    Install a global planner decision log for the run: every policy
    decision (simulator or live maintenance) is captured, joined with
    its executed cost, and dumped to FILE as JSONL on exit -- the input
    format of ``repro why --log FILE``.  Independent of ``--metrics``.

``--control-log FILE``
    Install a global control log for the run: every actuation the
    adaptive runtime's governors make is captured and dumped to FILE as
    JSONL on exit -- the input format of ``repro control-log --log
    FILE``.  Independent of ``--metrics``.

Execution (any subcommand)
--------------------------

``--workers N``
    Run eligible scan/filter/project chains as parallel block pipelines
    on an ``N``-worker pool (see :mod:`repro.engine.parallel`).  Charging
    stays centralized at the merge point, so all simulated costs are
    byte-identical to serial runs; only wall-clock changes.  ``0``
    (default) stays serial.  Overrides the ``REPRO_WORKERS`` environment
    variable for the run.

``--parallel-backend {thread,process}``
    Pool flavor for ``--workers``: threads (default) or the opt-in
    multiprocessing pool for CPU-bound expression evaluation.

All flags are accepted before or after the subcommand, and experiment
names work as top-level shorthand: ``repro fig6 --trace out.jsonl`` is
``repro experiment fig6 --trace out.jsonl``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

EXPERIMENT_NAMES: tuple[str, ...] = (
    "fig1", "intro", "fig4", "fig5", "fig6", "fig7",
    "bounds", "ablations", "operator-asymmetry",
    "online-bound", "three-way", "concavity",
)


def _obs_flags() -> argparse.ArgumentParser:
    """Shared ``--trace``/``--metrics`` options, valid at any position.

    One instance is attached to every subparser; the root gets its *own*
    instance.  ``SUPPRESS`` defaults keep a subparser from clobbering a
    value already parsed at the root (root-level ``set_defaults`` provides
    the fallback) -- and the root must not share action objects with the
    subparsers because ``set_defaults`` rewrites ``action.default`` in
    place, which would silently replace the subparsers' ``SUPPRESS``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=(
            "record spans + metrics and write a Chrome-trace JSONL file "
            "(implies --metrics)"
        ),
    )
    parent.add_argument(
        "--metrics",
        action="store_true",
        default=argparse.SUPPRESS,
        help="record metrics and print a summary table on exit",
    )
    parent.add_argument(
        "--serve-metrics",
        metavar="PORT",
        type=int,
        default=argparse.SUPPRESS,
        help=(
            "serve live metrics over HTTP while the command runs: "
            "/metrics (Prometheus), /healthz, /snapshot, /samples; "
            "port 0 picks a free port (implies --metrics)"
        ),
    )
    parent.add_argument(
        "--flight-recorder",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=(
            "sample the metrics registry into a bounded ring buffer in "
            "the background and dump it as JSONL on exit "
            "(implies --metrics)"
        ),
    )
    parent.add_argument(
        "--flight-interval-ms",
        metavar="MS",
        type=float,
        default=argparse.SUPPRESS,
        help="flight-recorder sampling period in milliseconds (default 50)",
    )
    parent.add_argument(
        "--profile",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=(
            "profile every query the run executes and append the "
            "per-operator attribution trees to FILE as JSONL"
        ),
    )
    parent.add_argument(
        "--decision-log",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=(
            "capture every planner decision, join it with its executed "
            "cost, and dump the trail to FILE as JSONL on exit "
            "(readable with `repro why --log FILE`)"
        ),
    )
    parent.add_argument(
        "--control-log",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=(
            "capture every actuation the adaptive runtime's governors "
            "make and dump the trail to FILE as JSONL on exit "
            "(readable with `repro control-log --log FILE`)"
        ),
    )
    parent.add_argument(
        "--workers",
        metavar="N",
        type=int,
        default=argparse.SUPPRESS,
        help=(
            "execute eligible scan/filter/project chains as parallel "
            "block pipelines on an N-worker pool (simulated costs are "
            "unchanged; 0 = serial, the default; overrides the "
            "REPRO_WORKERS environment variable)"
        ),
    )
    parent.add_argument(
        "--parallel-backend",
        choices=["thread", "process"],
        default=argparse.SUPPRESS,
        help=(
            "worker-pool backend for --workers: 'thread' (default) or "
            "'process' (multiprocessing, for CPU-bound expression "
            "evaluation)"
        ),
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    obs_flags = _obs_flags()
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Asymmetric Batch Incremental View Maintenance (ICDE 2005) "
            "reproduction"
        ),
        parents=[_obs_flags()],
    )
    parser.set_defaults(
        trace=None,
        metrics=False,
        serve_metrics=None,
        flight_recorder=None,
        flight_interval_ms=50.0,
        profile=None,
        decision_log=None,
        control_log=None,
        workers=None,
        parallel_backend=None,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment",
        help="run one paper experiment and print its table",
        parents=[obs_flags],
    )
    experiment.add_argument("name", choices=list(EXPERIMENT_NAMES))
    experiment.add_argument(
        "--scale", type=float, default=0.01, help="TPC-R scale factor"
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="measure the paper view's batch cost functions",
        parents=[obs_flags],
    )
    calibrate.add_argument("--scale", type=float, default=0.01)
    calibrate.add_argument(
        "--batches",
        type=int,
        nargs="+",
        default=[10, 25, 50, 100, 200, 400],
        help="batch sizes to sweep",
    )

    generate = sub.add_parser(
        "generate",
        help="emit TPC-R tables as dbgen-style .tbl files",
        parents=[obs_flags],
    )
    generate.add_argument("--scale", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=19721212)
    generate.add_argument(
        "--tables",
        nargs="+",
        default=["region", "nation", "supplier", "partsupp"],
    )
    generate.add_argument("--out", required=True, help="output directory")

    sql = sub.add_parser(
        "sql",
        help="run a SQL query against a fresh TPC-R database",
        parents=[obs_flags],
    )
    sql.add_argument("query", help="the SELECT statement")
    sql.add_argument("--scale", type=float, default=0.01)
    sql.add_argument(
        "--explain",
        action="store_true",
        help="print the physical plan instead of executing",
    )
    sql.add_argument(
        "--max-rows", type=int, default=20, help="truncate printed output"
    )

    explain = sub.add_parser(
        "explain",
        help=(
            "print a SQL query's physical plan; --analyze executes it "
            "and renders the per-operator EXPLAIN ANALYZE tree"
        ),
        parents=[obs_flags],
    )
    explain.add_argument("query", help="the SELECT statement")
    explain.add_argument("--scale", type=float, default=0.01)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "execute the query and annotate every operator with rows, "
            "blocks, simulated charges, wall time, and worker spread"
        ),
    )

    timeline = sub.add_parser(
        "timeline",
        help=(
            "visualize maintenance plans on the paper's workload: ASCII "
            "backlog timeline per policy plus a comparison table"
        ),
        parents=[obs_flags],
    )
    timeline.add_argument("--scale", type=float, default=0.01)
    timeline.add_argument("--horizon", type=int, default=200)
    timeline.add_argument(
        "--policies",
        nargs="+",
        default=["naive", "optimal", "online"],
        choices=["naive", "optimal", "online", "adapt"],
    )

    why = sub.add_parser(
        "why",
        help=(
            "render the planner's decision trail as a text tree: "
            "backlog, candidates, predicted costs, rationale, and the "
            "executed cost per step"
        ),
        parents=[obs_flags],
    )
    why.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        help=(
            "read decisions from a --decision-log JSONL file instead of "
            "running the sample workload"
        ),
    )
    why.add_argument(
        "--view", default=None, help="only decisions for this view id"
    )
    why.add_argument(
        "--step", type=int, default=None,
        help="only decisions at this time step",
    )
    why.add_argument(
        "--policy",
        choices=["naive", "online", "receding"],
        default="online",
        help="policy for the sample workload (ignored with --log)",
    )
    why.add_argument("--scale", type=float, default=0.01)
    why.add_argument(
        "--horizon", type=int, default=60,
        help="sample-workload length in steps (ignored with --log)",
    )

    control_log = sub.add_parser(
        "control-log",
        help=(
            "render the adaptive runtime's control trail: every governor "
            "actuation with its reason and signal values"
        ),
        parents=[obs_flags],
    )
    control_log.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        help=(
            "read control events from a --control-log JSONL file instead "
            "of running the sample adaptive workload"
        ),
    )
    control_log.add_argument(
        "--governor",
        choices=["policy", "workers", "block_size"],
        default=None,
        help="only events from this governor",
    )
    control_log.add_argument(
        "--view", default=None, help="only events for this view"
    )
    control_log.add_argument("--scale", type=float, default=0.01)
    control_log.add_argument(
        "--horizon", type=int, default=80,
        help="sample-workload length in steps (ignored with --log)",
    )

    control_ablation = sub.add_parser(
        "control-ablation",
        help=(
            "run the closed-loop ablation (baseline + full loop + one "
            "run per disabled governor) and print the ranked report"
        ),
        parents=[obs_flags],
    )
    control_ablation.add_argument("--scale", type=float, default=0.01)
    control_ablation.add_argument(
        "--horizon", type=int, default=120,
        help="steps per variant run",
    )
    control_ablation.add_argument(
        "--seed", type=int, default=11, help="workload seed"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in EXPERIMENT_NAMES:
        # Shorthand: ``repro fig6 ...`` == ``repro experiment fig6 ...``.
        argv = ["experiment", *argv]
    args = build_parser().parse_args(argv)
    handler = {
        "experiment": _run_experiment,
        "calibrate": _run_calibrate,
        "generate": _run_generate,
        "sql": _run_sql,
        "explain": _run_explain,
        "timeline": _run_timeline,
        "why": _run_why,
        "control-log": _run_control_log,
        "control-ablation": _run_control_ablation,
    }[args.command]
    if args.profile:
        handler = _with_profile_sink(handler, args.profile)
    if args.decision_log:
        handler = _with_decision_log(handler, args.decision_log)
    if args.control_log:
        handler = _with_control_log(handler, args.control_log)
    observed = (
        args.trace
        or args.metrics
        or args.serve_metrics is not None
        or args.flight_recorder
    )
    if args.workers is None and args.parallel_backend is None:
        if not observed:
            return handler(args)
        return _run_observed(handler, args)
    # ``--workers``/``--parallel-backend`` configure the process-global
    # defaults every Database the subcommand builds will resolve; restore
    # them afterwards so embedding callers (and tests) see no leakage.
    from repro.engine import parallel

    try:
        if args.workers is not None:
            parallel.set_default_workers(args.workers)
        if args.parallel_backend is not None:
            parallel.set_default_backend(args.parallel_backend)
        if not observed:
            return handler(args)
        return _run_observed(handler, args)
    finally:
        parallel.set_default_workers(None)
        parallel.set_default_backend(None)


def _with_profile_sink(handler, path):
    """Wrap a subcommand handler with the global query-profile sink.

    Every ``Database.execute`` during the run profiles itself; the
    profile dicts stream to ``path`` as JSONL.  The previous sink (none,
    normally) is restored afterwards so embedding callers see no leakage.
    """

    def wrapped(args) -> int:
        import json

        from repro.obs import attrib

        try:
            # Fail fast, same contract as --trace/--flight-recorder.
            out = open(path, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write {path!r}: {exc}", file=sys.stderr)
            return 2
        count = 0

        def sink(profile: dict) -> None:
            nonlocal count
            out.write(json.dumps(profile, sort_keys=True) + "\n")
            count += 1

        previous = attrib.set_profile_sink(sink)
        try:
            return handler(args)
        finally:
            attrib.set_profile_sink(previous)
            out.close()
            print(
                f"[obs] wrote {count} query profiles to {path}",
                file=sys.stderr,
            )

    return wrapped


def _with_decision_log(handler, path):
    """Wrap a subcommand handler with the global planner decision log.

    Every policy decision during the run is captured and joined with its
    executed cost; the trail streams to ``path`` as JSONL on exit (one
    event dict per line, the input of ``repro why --log``).  The
    previous log (none, normally) is restored afterwards.
    """

    def wrapped(args) -> int:
        import json

        from repro.obs import decisions

        try:
            # Fail fast, same contract as --profile.
            out = open(path, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write {path!r}: {exc}", file=sys.stderr)
            return 2
        log = decisions.DecisionLog()
        previous = decisions.set_decision_log(log)
        try:
            return handler(args)
        finally:
            decisions.set_decision_log(previous)
            count = 0
            for event in log.events():
                out.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
                count += 1
            out.close()
            dropped = f" ({log.dropped} dropped)" if log.dropped else ""
            print(
                f"[obs] wrote {count} decision events to {path}{dropped}",
                file=sys.stderr,
            )

    return wrapped


def _with_control_log(handler, path):
    """Wrap a subcommand handler with the global control-event log.

    Every actuation the adaptive runtime's governors make during the run
    is captured; the trail streams to ``path`` as JSONL on exit (one
    event dict per line, the input of ``repro control-log --log``).  The
    previous log (none, normally) is restored afterwards.
    """

    def wrapped(args) -> int:
        import json

        from repro.control import events as control_events

        try:
            # Fail fast, same contract as --profile/--decision-log.
            out = open(path, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write {path!r}: {exc}", file=sys.stderr)
            return 2
        log = control_events.ControlLog()
        previous = control_events.set_control_log(log)
        try:
            return handler(args)
        finally:
            control_events.set_control_log(previous)
            count = 0
            for event in log.events():
                out.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
                count += 1
            out.close()
            dropped = f" ({log.dropped} dropped)" if log.dropped else ""
            print(
                f"[obs] wrote {count} control events to {path}{dropped}",
                file=sys.stderr,
            )

    return wrapped


def _run_observed(handler, args) -> int:
    """Run ``handler`` under a fresh recorder; report metrics/trace on exit.

    The recorder wraps the *entire* subcommand, so everything the run does
    -- calibration, planning, simulation, live maintenance -- lands in one
    registry and one trace file.  With ``--serve-metrics`` the registry is
    additionally scrapeable over HTTP *while* the command runs, and with
    ``--flight-recorder`` a background sampler keeps a time series of it.
    All reports are emitted in a ``finally`` block, so a run that raises
    still flushes its trace file, flight-recorder samples and metrics
    table -- a failed run leaves its evidence behind.
    """
    from repro import obs

    for destination in (args.trace, args.flight_recorder):
        if not destination:
            continue
        try:
            # Fail fast: a mistyped destination should surface now, not
            # after minutes of experiment whose output is then lost.
            with open(destination, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write {destination!r}: {exc}", file=sys.stderr)
            return 2

    recorder = obs.Recorder(trace=bool(args.trace))
    flight = None
    if args.flight_recorder:
        from repro.obs.sampler import FlightRecorder

        flight = FlightRecorder(
            recorder, interval_s=max(args.flight_interval_ms, 1.0) / 1e3
        )
    server = None
    if args.serve_metrics is not None:
        from repro.obs.serve import MetricsServer

        server = MetricsServer(recorder, port=args.serve_metrics, sampler=flight)
        try:
            port = server.start()
        except OSError as exc:
            print(f"error: cannot serve metrics: {exc}", file=sys.stderr)
            return 2
        print(
            f"[obs] serving metrics on http://127.0.0.1:{port}/metrics "
            f"(also /healthz, /snapshot, /samples, /views, /decisions, "
            f"/control)",
            file=sys.stderr,
        )
    if flight is not None:
        flight.start()

    obs.install(recorder)
    try:
        with obs.trace("cli.command", command=args.command):
            return handler(args)
    finally:
        obs.install(None)
        if flight is not None:
            flight.stop()  # takes a final sample before the dump
            count = flight.dump_jsonl(args.flight_recorder)
            print(
                f"[obs] wrote {count} flight-recorder samples to "
                f"{args.flight_recorder}"
            )
        if server is not None:
            server.stop()
        print("\n" + recorder.summary_table())
        if args.trace:
            count = recorder.write_trace(args.trace)
            print(f"[obs] wrote {count} trace events to {args.trace}")


# ----------------------------------------------------------------------


def _run_experiment(args) -> int:
    from repro import experiments as exp

    if args.name == "ablations":
        for runner in (
            exp.run_astar_heuristic_ablation,
            exp.run_plan_class_ablation,
            exp.run_estimator_ablation,
            exp.run_cost_family_study,
        ):
            print(runner().format())
            print()
        return 0
    runners = {
        "fig1": lambda: exp.run_fig1(scale=args.scale),
        "intro": lambda: exp.run_intro_example(scale=args.scale),
        "fig4": lambda: exp.run_fig4(scale=args.scale),
        "fig5": lambda: exp.run_fig5(scale=args.scale),
        "fig6": lambda: exp.run_fig6(scale=args.scale),
        "fig7": lambda: exp.run_fig7(scale=args.scale),
        "bounds": lambda: exp.run_bounds_study(),
        "operator-asymmetry": lambda: exp.run_operator_asymmetry(),
        "online-bound": lambda: exp.run_online_bound_study(),
        "three-way": lambda: exp.run_three_way(scale=args.scale),
        "concavity": lambda: exp.run_concavity_study(),
    }
    print(runners[args.name]().format())
    return 0


def _run_calibrate(args) -> int:
    from repro.experiments import common
    from repro.ivm.calibration import measure_cost_function

    setup = common.build_setup(scale=args.scale, update_seed=321)
    for alias, updater in (
        ("PS", setup.ps_updater),
        ("S", setup.supplier_updater),
    ):
        result = measure_cost_function(
            setup.view, alias, args.batches, updater
        )
        print(f"f_{alias}(k) samples (simulated ms):")
        for k, cost in result.samples:
            print(f"  {k:6d}  {cost:10.2f}")
        fit = result.linear_fit
        print(
            f"  fit: {fit.slope:.4f} * k + {fit.setup:.2f}   "
            f"(max rel err {result.max_relative_fit_error():.1%})\n"
        )
    return 0


def _run_generate(args) -> int:
    from repro.engine.database import Database
    from repro.engine.io import dump_database
    from repro.tpcr.gen import load_tpcr

    db = Database()
    load_tpcr(db, scale=args.scale, seed=args.seed, tables=args.tables)
    counts = dump_database(db, args.out)
    for name, count in sorted(counts.items()):
        print(f"{name}.tbl: {count} rows")
    return 0


def _load_sql_database(scale: float):
    """A fresh TPC-R database with the standard key indexes, for ad-hoc SQL."""
    from repro.engine.database import Database
    from repro.tpcr.gen import load_tpcr

    db = Database()
    load_tpcr(
        db,
        scale=scale,
        tables=(
            "region", "nation", "supplier", "partsupp", "part",
        ),
    )
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    db.table("part").create_index("partkey")
    return db


def _run_sql(args) -> int:
    from repro.sql import SqlError, parse_query

    db = _load_sql_database(args.scale)
    try:
        spec = parse_query(args.query)
    except SqlError as exc:
        print(f"SQL error: {exc}", file=sys.stderr)
        return 1
    if args.explain:
        print(db.explain(spec))
        return 0
    with db.counter.window() as window:
        result = db.execute(spec)
    print("  ".join(result.columns))
    for i, row in enumerate(result.rows):
        if i >= args.max_rows:
            print(f"... ({len(result.rows) - args.max_rows} more rows)")
            break
        print("  ".join(str(v) for v in row))
    print(
        f"\n{len(result.rows)} row(s); simulated cost "
        f"{window.elapsed_ms:.2f} ms"
    )
    return 0


def _run_explain(args) -> int:
    from repro.sql import SqlError, parse_query

    db = _load_sql_database(args.scale)
    try:
        spec = parse_query(args.query)
    except SqlError as exc:
        print(f"SQL error: {exc}", file=sys.stderr)
        return 1
    print(db.explain(spec, analyze=args.analyze))
    return 0


def _run_timeline(args) -> int:
    from repro.core.adapt import adapt_plan
    from repro.core.astar import find_optimal_lgm_plan
    from repro.core.naive import NaivePolicy
    from repro.core.online import OnlinePolicy
    from repro.core.report import (
        compare_traces,
        render_trace_timeline,
        slo_summary,
    )
    from repro.core.simulator import execute_plan, simulate_policy
    from repro.experiments import common
    from repro.workloads.arrivals import uniform_arrivals

    costs = common.cost_functions(scale=args.scale)
    limit = common.default_limit(costs)
    arrivals = uniform_arrivals(common.ARRIVAL_MIX, args.horizon + 1)
    problem = common.make_problem(arrivals, limit, costs)

    traces = {}
    for name in args.policies:
        if name == "naive":
            traces["NAIVE"] = simulate_policy(problem, NaivePolicy())
        elif name == "optimal":
            traces["OPT_LGM"] = execute_plan(
                problem, find_optimal_lgm_plan(problem).plan
            )
        elif name == "online":
            traces["ONLINE"] = simulate_policy(problem, OnlinePolicy())
        else:
            policy = adapt_plan(problem, max(1, args.horizon // 2))
            traces["ADAPT"] = simulate_policy(problem, policy)

    for name, trace in traces.items():
        print(f"=== {name} ===")
        print(
            render_trace_timeline(
                problem, trace, table_names=("PS", "S")
            )
        )
        print()
    print(compare_traces(problem, traces))
    print()
    print(slo_summary(problem, traces))
    return 0


def _run_why(args) -> int:
    import json

    from repro.obs import decisions

    if args.log:
        try:
            with open(args.log, encoding="utf-8") as fh:
                events = [
                    decisions.DecisionEvent.from_dict(json.loads(line))
                    for line in fh
                    if line.strip()
                ]
        except OSError as exc:
            print(f"error: cannot read {args.log!r}: {exc}", file=sys.stderr)
            return 2
        except (KeyError, ValueError) as exc:
            print(
                f"error: {args.log!r} is not a decision-log JSONL file: "
                f"{exc}",
                file=sys.stderr,
            )
            return 2
    else:
        events = _why_sample_run(args)
    print(decisions.render_decision_trail(events, view=args.view, step=args.step))
    return 0


def _why_sample_run(args):
    """Simulate the paper's workload with a decision log installed."""
    from repro.core.naive import NaivePolicy
    from repro.core.online import OnlinePolicy
    from repro.core.receding import RecedingHorizonPolicy
    from repro.core.simulator import simulate_policy
    from repro.experiments import common
    from repro.obs import decisions
    from repro.workloads.arrivals import uniform_arrivals

    costs = common.cost_functions(scale=args.scale)
    limit = common.default_limit(costs)
    arrivals = uniform_arrivals(common.ARRIVAL_MIX, args.horizon + 1)
    problem = common.make_problem(arrivals, limit, costs)
    policy = {
        "naive": NaivePolicy,
        "online": OnlinePolicy,
        "receding": RecedingHorizonPolicy,
    }[args.policy]()
    log = decisions.get_decision_log()
    if log is not None:
        # --decision-log already installed a global sink; feed it so the
        # rendered trail and the dumped JSONL are one and the same.
        simulate_policy(problem, policy)
        return log.events()
    with decisions.collecting() as log:
        simulate_policy(problem, policy)
    return log.events()


def _run_control_log(args) -> int:
    import json

    from repro.control import events as control_events

    if args.log:
        try:
            with open(args.log, encoding="utf-8") as fh:
                events = [
                    control_events.ControlEvent.from_dict(json.loads(line))
                    for line in fh
                    if line.strip()
                ]
        except OSError as exc:
            print(f"error: cannot read {args.log!r}: {exc}", file=sys.stderr)
            return 2
        except (KeyError, ValueError) as exc:
            print(
                f"error: {args.log!r} is not a control-log JSONL file: "
                f"{exc}",
                file=sys.stderr,
            )
            return 2
    else:
        from repro.control.ablation import run_control_sample

        events = run_control_sample(
            scale=args.scale, horizon=args.horizon
        )
    print(
        control_events.render_control_log(
            events, governor=args.governor, view=args.view
        )
    )
    return 0


def _run_control_ablation(args) -> int:
    from repro.control.ablation import run_control_ablation

    result = run_control_ablation(
        scale=args.scale, horizon=args.horizon, seed=args.seed
    )
    print(result.format())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
