"""Secondary indexes.

Indexes map a column value to the row ids (version slots) carrying it.
They index *all* row versions; readers filter by snapshot visibility, so an
index never needs to be rewound when reading the past.  Dead entries are
removed eagerly on deletion to keep probe costs proportional to live data.

Two flavours:

* :class:`HashIndex` -- O(1) equality probes; the engine's default and the
  source of the cheap, near-linear delta-processing cost curves in the
  paper's Figure 1.
* :class:`SortedIndex` -- bisect-based, supports equality and range probes;
  used where ordered access matters (e.g. MIN/MAX recomputation).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable

from repro.engine.errors import SchemaError


class Index(ABC):
    """Base class: a mapping from key values to row ids."""

    def __init__(self, name: str, column: str):
        if not name:
            raise SchemaError("index needs a name")
        self.name = name
        self.column = column

    @abstractmethod
    def add(self, key: Hashable, rid: int) -> None:
        """Register ``rid`` under ``key``."""

    @abstractmethod
    def remove(self, key: Hashable, rid: int) -> None:
        """Remove a previously added entry (idempotent)."""

    @abstractmethod
    def lookup(self, key: Hashable) -> tuple[int, ...]:
        """Row ids registered under ``key`` (may include invisible versions)."""

    @abstractmethod
    def __len__(self) -> int:
        """Total number of entries."""


class HashIndex(Index):
    """Hash map from key to row-id list; O(1) equality lookups."""

    def __init__(self, name: str, column: str):
        super().__init__(name, column)
        self._buckets: dict[Hashable, list[int]] = {}
        self._size = 0

    def add(self, key: Hashable, rid: int) -> None:
        self._buckets.setdefault(key, []).append(rid)
        self._size += 1

    def remove(self, key: Hashable, rid: int) -> None:
        bucket = self._buckets.get(key)
        if not bucket:
            return
        try:
            bucket.remove(rid)
        except ValueError:
            return
        self._size -= 1
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Hashable) -> tuple[int, ...]:
        return tuple(self._buckets.get(key, ()))

    def keys(self) -> Iterable[Hashable]:
        """Distinct keys currently present."""
        return self._buckets.keys()

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.name!r}, column={self.column!r}, "
            f"entries={self._size})"
        )


class SortedIndex(Index):
    """Sorted list of ``(key, rid)`` pairs; equality and range lookups."""

    def __init__(self, name: str, column: str):
        super().__init__(name, column)
        self._entries: list[tuple[Any, int]] = []

    def add(self, key: Hashable, rid: int) -> None:
        bisect.insort(self._entries, (key, rid))

    def remove(self, key: Hashable, rid: int) -> None:
        pos = bisect.bisect_left(self._entries, (key, rid))
        if pos < len(self._entries) and self._entries[pos] == (key, rid):
            self._entries.pop(pos)

    def lookup(self, key: Hashable) -> tuple[int, ...]:
        lo = bisect.bisect_left(self._entries, (key, -1))
        rids = []
        for k, rid in self._entries[lo:]:
            if k != key:
                break
            rids.append(rid)
        return tuple(rids)

    def range(self, low: Any, high: Any) -> tuple[tuple[Any, int], ...]:
        """All ``(key, rid)`` entries with ``low <= key <= high``."""
        lo = bisect.bisect_left(self._entries, (low, -1))
        out = []
        for k, rid in self._entries[lo:]:
            if k > high:
                break
            out.append((k, rid))
        return tuple(out)

    def first(self) -> tuple[Any, int] | None:
        """The smallest ``(key, rid)`` entry, or None when empty."""
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SortedIndex({self.name!r}, column={self.column!r}, "
            f"entries={len(self._entries)})"
        )
