"""Deterministic operation-count cost model.

The paper measures view-maintenance cost in wall-clock seconds on a
commercial DBMS.  Wall clocks are neither available (we simulate) nor
reproducible; instead every physical operator charges its work to an
:class:`OperationCounter`, and a :class:`CostModel` converts the tally to
simulated milliseconds with fixed weights.

The weights encode the usual relative magnitudes of database operations:
a page read dominates, an index probe costs a few comparisons, streaming a
tuple through an operator is cheap.  Their absolute values are arbitrary
(the paper's absolute numbers depend on its 2005-era hardware anyway); what
matters for reproducing the paper is the *shape* of the resulting batch
cost curves -- index-assisted maintenance scales linearly with small slope,
scan-based maintenance pays a large size-dependent setup -- and those
shapes come out of operator structure, not the particular weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Rows per disk page assumed when converting scans into page reads.
#: Deliberately coarse; only the staircase granularity depends on it.
ROWS_PER_PAGE = 64


@dataclass(frozen=True)
class CostModel:
    """Weights (simulated milliseconds) for each operation class."""

    page_read: float = 1.0  # one page fetched from storage
    tuple_cpu: float = 0.005  # streaming one tuple through an operator
    compare: float = 0.002  # one predicate/key comparison
    index_probe: float = 0.02  # one hash/sorted index lookup
    hash_build: float = 0.01  # inserting one tuple into a join hash table
    hash_probe: float = 0.008  # probing a join hash table once
    row_write: float = 0.05  # writing one row version (insert/delete)
    index_maintain: float = 0.02  # updating one secondary index entry
    agg_update: float = 0.01  # folding one tuple into an aggregate state
    sort_item: float = 0.02  # one item's share of a sort/recompute pass
    startup: float = 0.5  # fixed per-statement setup (parse/optimize)

    def charge_table(self) -> "OperationCounter":
        """Convenience: a fresh counter bound to this model."""
        return OperationCounter(model=self)


@dataclass
class OperationCounter:
    """Mutable tally of operations, convertible to simulated time.

    One counter is typically shared by a whole :class:`~repro.engine.database.Database`;
    :meth:`window` brackets a region of work (e.g. one maintenance batch)
    and reports the simulated milliseconds it consumed.
    """

    model: CostModel = field(default_factory=CostModel)
    page_reads: int = 0
    tuple_cpu: int = 0
    compares: int = 0
    index_probes: int = 0
    hash_builds: int = 0
    hash_probes: int = 0
    row_writes: int = 0
    index_maintains: int = 0
    agg_updates: int = 0
    sort_items: int = 0
    startups: int = 0

    _FIELDS = (
        "page_reads",
        "tuple_cpu",
        "compares",
        "index_probes",
        "hash_builds",
        "hash_probes",
        "row_writes",
        "index_maintains",
        "agg_updates",
        "sort_items",
        "startups",
    )
    _WEIGHT_BY_FIELD = {
        "page_reads": "page_read",
        "tuple_cpu": "tuple_cpu",
        "compares": "compare",
        "index_probes": "index_probe",
        "hash_builds": "hash_build",
        "hash_probes": "hash_probe",
        "row_writes": "row_write",
        "index_maintains": "index_maintain",
        "agg_updates": "agg_update",
        "sort_items": "sort_item",
        "startups": "startup",
    }

    # -- charging -----------------------------------------------------------

    def charge_pages(self, rows: int) -> None:
        """Charge page reads for scanning ``rows`` compactly stored rows."""
        if rows > 0:
            self.page_reads += -(-rows // ROWS_PER_PAGE)

    def charge(self, field_name: str, count: int = 1) -> None:
        """Add ``count`` operations of class ``field_name``."""
        if field_name not in self._FIELDS:
            raise ValueError(f"unknown operation class {field_name!r}")
        setattr(self, field_name, getattr(self, field_name) + count)

    # -- reading ------------------------------------------------------------

    def elapsed_ms(self) -> float:
        """Weighted total simulated milliseconds."""
        total = 0.0
        for field_name in self._FIELDS:
            weight = getattr(self.model, self._WEIGHT_BY_FIELD[field_name])
            total += weight * getattr(self, field_name)
        return total

    def snapshot(self) -> dict[str, int]:
        """Current raw tallies (for diagnostics and tests)."""
        return {f: getattr(self, f) for f in self._FIELDS}

    def reset(self) -> None:
        """Zero every tally."""
        for field_name in self._FIELDS:
            setattr(self, field_name, 0)

    def window(self) -> "CostWindow":
        """Context manager measuring the simulated time of a code region."""
        return CostWindow(self)

    def __repr__(self) -> str:
        return f"OperationCounter({self.elapsed_ms():.3f} ms)"


class CostWindow:
    """Measures simulated milliseconds consumed inside a ``with`` block."""

    def __init__(self, counter: OperationCounter):
        self.counter = counter
        self.elapsed_ms = 0.0
        self._start = 0.0

    def __enter__(self) -> "CostWindow":
        self._start = self.counter.elapsed_ms()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_ms = self.counter.elapsed_ms() - self._start
