"""Chunked execution: the :class:`RowBlock` unit of the blocked pipeline.

The engine's original pull model moved one Python tuple at a time through
a chain of generator frames, paying a frame switch, an attribute lookup,
and an :class:`~repro.engine.costmodel.OperationCounter` call *per row per
operator*.  A :class:`RowBlock` moves a fixed-size chunk of rows instead:
operators process whole blocks with C-speed bulk primitives (``zip``,
``map``, list comprehensions) and charge the cost counter once per block
with the exact same totals -- the simulated page/CPU costs are
**bit-identical** to row-at-a-time execution, only the interpreter
overhead drops.  ``tests/integration/test_block_equivalence.py`` enforces
that invariant across block sizes.

Layout convention matches the row model: a block carries the same
``{qualified column name: position}`` layout its operator exposes, and the
logical content is the ordered multiset of row tuples.  Storage is
column-major (one Python list per column) so expression evaluation
(:meth:`~repro.engine.expr.Expression.compile_block`) can pull a whole
column without touching individual rows, and projections can reuse column
lists without copying.  A row-major view is materialized lazily (one
C-level ``zip`` transpose) and cached, because join assembly wants tuples.

Blocks are immutable by convention: operators must never mutate a block's
column lists after handing the block downstream (projection and filter
fast paths share them zero-copy).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

#: Default rows per block.  Measured, not guessed: see
#: ``benchmarks/bench_block_size_sweep.py`` -- wall time on the three_way
#: workload is flat within noise from 64 upward, so we take the first size
#: on the plateau (small blocks keep per-block working sets cache-friendly
#: and the fill histogram informative).
DEFAULT_BLOCK_SIZE = 256


class RowBlock:
    """A chunk of rows in column-major layout.

    ``columns[pos]`` is the list of values of the column at tuple position
    ``pos``; ``layout`` maps qualified column names to positions, exactly
    as on the operator that produced the block.
    """

    __slots__ = ("layout", "_columns", "_rows", "_length", "_col_cache")

    def __init__(
        self,
        columns: Sequence[list] | None,
        layout: Mapping[str, int],
        rows: list[tuple] | None = None,
        length: int | None = None,
    ):
        self.layout = layout
        self._columns = list(columns) if columns is not None else None
        self._rows = rows
        self._col_cache: dict[int, list] | None = None
        if length is not None:
            self._length = length
        elif rows is not None:
            self._length = len(rows)
        elif self._columns:
            self._length = len(self._columns[0])
        else:
            self._length = 0

    # -- constructors --------------------------------------------------

    @classmethod
    def from_rows(cls, rows: list[tuple], layout: Mapping[str, int]) -> "RowBlock":
        """Wrap an ordered list of row tuples (kept by reference)."""
        return cls(None, layout, rows=rows)

    @classmethod
    def from_columns(
        cls, columns: Sequence[list], layout: Mapping[str, int], length: int | None = None
    ) -> "RowBlock":
        """Wrap column lists (kept by reference -- zero copy)."""
        return cls(columns, layout, length=length)

    # -- views ---------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def is_columnar(self) -> bool:
        """True when the column-major view is already materialized.

        Fast paths key on this to gather column-by-column instead of
        forcing the full row transpose (see :meth:`take` and the hash
        join's probe kernel).
        """
        return self._columns is not None

    def rows(self) -> list[tuple]:
        """The row-major view (lazily transposed once, then cached)."""
        if self._rows is None:
            assert self._columns is not None
            self._rows = list(zip(*self._columns)) if self._columns else []
        return self._rows

    def column(self, pos: int) -> list:
        """One column's values (lazily extracted once, then cached).

        For a row-major block, only the requested column is materialized
        (one list comprehension), not a full transpose -- joins typically
        touch a single key column of a wide block.  Returns an internal
        list; callers must not mutate it.
        """
        if self._columns is not None:
            return self._columns[pos]
        cache = self._col_cache
        if cache is None:
            cache = self._col_cache = {}
        col = cache.get(pos)
        if col is None:
            assert self._rows is not None
            col = cache[pos] = [row[pos] for row in self._rows]
        return col

    def take(self, indices: Sequence[int]) -> "RowBlock":
        """A new block keeping only the rows at ``indices`` (in order).

        Column-major blocks gather column-by-column and stay column-major:
        forcing the row view here would pay a full transpose of every
        column (including ones a downstream projection will drop) and
        discard the columnar layout the pipeline is built around.
        Row-major blocks gather their row tuples directly.
        """
        if self._columns is not None:
            return RowBlock.from_columns(
                [[column[i] for i in indices] for column in self._columns],
                self.layout,
                length=len(indices),
            )
        rows = self.rows()
        return RowBlock.from_rows([rows[i] for i in indices], self.layout)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def __repr__(self) -> str:
        return f"RowBlock(rows={self._length}, width={len(self.layout)})"


def iter_blocks(
    rows: Sequence[tuple], layout: Mapping[str, int], block_size: int
) -> Iterator[RowBlock]:
    """Chunk an in-memory row list into blocks of at most ``block_size``.

    Slices share the underlying row tuples (no per-row copying); empty
    inputs produce no blocks, matching an exhausted row iterator.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    for start in range(0, len(rows), block_size):
        chunk = rows[start : start + block_size]
        yield RowBlock.from_rows(list(chunk), layout)


def blocks_to_rows(blocks: Iterable[RowBlock]) -> list[tuple]:
    """Flatten a block stream back into one ordered row list."""
    out: list[tuple] = []
    for block in blocks:
        out.extend(block.rows())
    return out
