"""MVCC-lite table storage.

Every modification to a table gets a monotonically increasing **log
sequence number** (LSN).  Row versions carry ``(xmin, xmax)``: the LSN that
created them and the LSN that deleted them (``None`` while live).  A
:class:`~repro.engine.snapshot.Snapshot` at LSN ``L`` sees exactly the rows
with ``xmin <= L < xmax`` -- i.e. the table as of modification ``L``.

Why a view-maintenance reproduction needs this: the paper applies new
modifications to base tables *immediately* while the view lags behind.
When a maintenance batch for ``dR_i`` finally runs, its join against the
other base tables must see them at the state the view has already
incorporated, not their current state; joining against the current state is
the *state bug* of Colby et al. that the paper's footnote 1 mentions.
Snapshots make the correct historical read a one-liner.

Updates are recorded as delete-plus-insert under a single LSN, and every
modification appends a :class:`ModEvent` to the table's history; delta
tables in :mod:`repro.ivm.delta` are windows over this history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.engine.costmodel import OperationCounter
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.index import HashIndex, Index, SortedIndex
from repro.engine.snapshot import Snapshot
from repro.engine.types import Schema


@dataclass
class RowVersion:
    """One stored version of a row."""

    values: tuple
    xmin: int
    xmax: int | None = None

    def visible_at(self, lsn: int) -> bool:
        """Whether this version exists in the snapshot at ``lsn``."""
        return self.xmin <= lsn and (self.xmax is None or self.xmax > lsn)


@dataclass(frozen=True)
class ModEvent:
    """One logical modification, as seen by delta tables.

    ``kind`` is ``"insert"``, ``"delete"``, or ``"update"``; ``old_values``
    / ``new_values`` are the affected row's contents before/after (``None``
    where not applicable).
    """

    lsn: int
    kind: str
    old_values: tuple | None
    new_values: tuple | None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete", "update"):
            raise ValueError(f"unknown modification kind {self.kind!r}")


class Table:
    """An append-only versioned heap with secondary indexes and a history."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        counter: OperationCounter | None = None,
    ):
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name {name!r}")
        self.name = name
        self.schema = schema
        self.counter = counter or OperationCounter()
        self._versions: list[RowVersion] = []
        self._live_count = 0
        self._lsn = 0
        self.history: list[ModEvent] = []
        self.indexes: dict[str, Index] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def current_lsn(self) -> int:
        """LSN of the latest modification (0 when pristine)."""
        return self._lsn

    @property
    def live_count(self) -> int:
        """Number of rows visible at the current LSN."""
        return self._live_count

    def version_count(self) -> int:
        """Total stored versions, live and dead (storage footprint)."""
        return len(self._versions)

    def version(self, rid: int) -> RowVersion:
        """The stored version at slot ``rid``."""
        return self._versions[rid]

    def live_rows(self) -> Iterator[tuple]:
        """Iterate current row values (no cost charged; introspection only)."""
        for v in self._versions:
            if v.xmax is None:
                yield v.values

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash", name: str | None = None) -> Index:
        """Create (and backfill) a secondary index on ``column``."""
        pos = self.schema.position(column)
        index_name = name or f"{self.name}_{column}_{kind}"
        if index_name in self.indexes:
            raise SchemaError(f"index {index_name!r} already exists")
        if kind == "hash":
            index: Index = HashIndex(index_name, column)
        elif kind == "sorted":
            index = SortedIndex(index_name, column)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        # Backfill every version (not just live ones) so snapshots taken at
        # any LSN can use the index.
        for rid, v in enumerate(self._versions):
            index.add(v.values[pos], rid)
        self.counter.charge("index_maintains", len(self._versions))
        self.indexes[index_name] = index
        return index

    def index_on(self, column: str) -> Index | None:
        """Any index whose key is ``column`` (hash preferred), else None."""
        hash_hit = None
        sorted_hit = None
        for index in self.indexes.values():
            if index.column == column:
                if isinstance(index, HashIndex):
                    hash_hit = index
                else:
                    sorted_hit = index
        # Explicit None test: indexes define __len__, so an *empty* hash
        # index is falsy and `or` would wrongly skip it.
        return hash_hit if hash_hit is not None else sorted_hit

    # ------------------------------------------------------------------
    # Modifications (each bumps the LSN and appends a ModEvent)
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> ModEvent:
        """Insert one row; returns the logged event."""
        row = self.schema.validate_row(values)
        self._lsn += 1
        rid = len(self._versions)
        self._versions.append(RowVersion(values=row, xmin=self._lsn))
        self._live_count += 1
        self.counter.charge("row_writes")
        for index in self.indexes.values():
            pos = self.schema.position(index.column)
            index.add(row[pos], rid)
            self.counter.charge("index_maintains")
        event = ModEvent(lsn=self._lsn, kind="insert", old_values=None, new_values=row)
        self.history.append(event)
        return event

    def delete_rid(self, rid: int) -> ModEvent:
        """Delete the live version at slot ``rid``."""
        version = self._version_live(rid)
        self._lsn += 1
        version.xmax = self._lsn
        self._live_count -= 1
        self.counter.charge("row_writes")
        # Indexes are version-aware: dead versions stay indexed and readers
        # filter by snapshot visibility, so historical probes remain exact.
        # Marking the tombstone still costs index maintenance work.
        self.counter.charge("index_maintains", len(self.indexes))
        event = ModEvent(
            lsn=self._lsn, kind="delete", old_values=version.values, new_values=None
        )
        self.history.append(event)
        return event

    def update_rid(self, rid: int, changes: dict[str, Any]) -> ModEvent:
        """Update columns of the live version at slot ``rid``.

        Recorded as delete-plus-insert under one LSN, so snapshots see the
        row atomically flip from old to new values.
        """
        if not changes:
            raise ExecutionError("update with no changed columns")
        version = self._version_live(rid)
        new_values = list(version.values)
        for column, value in changes.items():
            pos = self.schema.position(column)
            new_values[pos] = self.schema.columns[pos].type.validate(value)
        self._lsn += 1
        version.xmax = self._lsn
        new_rid = len(self._versions)
        new_row = tuple(new_values)
        self._versions.append(RowVersion(values=new_row, xmin=self._lsn))
        self.counter.charge("row_writes", 2)
        for index in self.indexes.values():
            pos = self.schema.position(index.column)
            # Old version stays indexed (version-aware reads filter it);
            # only the new version needs an entry.
            index.add(new_row[pos], new_rid)
            self.counter.charge("index_maintains", 2)
        event = ModEvent(
            lsn=self._lsn,
            kind="update",
            old_values=version.values,
            new_values=new_row,
        )
        self.history.append(event)
        return event

    def find_rids(self, predicate: Callable[[tuple], bool]) -> list[int]:
        """Row ids of live versions matching ``predicate`` (no cost charged)."""
        return [
            rid
            for rid, v in enumerate(self._versions)
            if v.xmax is None and predicate(v.values)
        ]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, lsn: int | None = None) -> Snapshot:
        """The table's state as of ``lsn`` (default: now)."""
        at = self._lsn if lsn is None else lsn
        if at < 0 or at > self._lsn:
            raise ExecutionError(
                f"snapshot LSN {at} outside [0, {self._lsn}] for {self.name}"
            )
        return Snapshot(self, at)

    def events_between(self, lsn_from: int, lsn_to: int) -> list[ModEvent]:
        """History events with ``lsn_from < lsn <= lsn_to`` (a delta window)."""
        return [e for e in self.history if lsn_from < e.lsn <= lsn_to]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def vacuum(self, before_lsn: int | None = None) -> int:
        """Reclaim dead row versions no snapshot at or after ``before_lsn``
        can see; returns the number of versions removed.

        Compaction **renumbers row ids** and rebuilds every index, so any
        externally held rid (e.g. an update stream's victim list) becomes
        invalid -- vacuum between workload phases, not during one.  History
        is *not* trimmed: delta tables window over it by LSN, which this
        operation does not disturb.  ``before_lsn`` defaults to the current
        LSN (reclaim everything dead); pass the oldest LSN any live
        snapshot or lagging view still reads to keep those readable.
        """
        watermark = self._lsn if before_lsn is None else before_lsn
        if not 0 <= watermark <= self._lsn:
            raise ExecutionError(
                f"vacuum watermark {watermark} outside [0, {self._lsn}]"
            )
        survivors = [
            v
            for v in self._versions
            if v.xmax is None or v.xmax > watermark
        ]
        reclaimed = len(self._versions) - len(survivors)
        if reclaimed == 0:
            return 0
        self._versions = survivors
        self.counter.charge("row_writes", len(survivors))
        # Rebuild every index against the surviving versions.
        for index_name, old_index in list(self.indexes.items()):
            column = old_index.column
            kind = "hash" if isinstance(old_index, HashIndex) else "sorted"
            del self.indexes[index_name]
            self.create_index(column, kind=kind, name=index_name)
        return reclaimed

    # ------------------------------------------------------------------

    def _version_live(self, rid: int) -> RowVersion:
        if not 0 <= rid < len(self._versions):
            raise ExecutionError(f"row id {rid} out of range for {self.name}")
        version = self._versions[rid]
        if version.xmax is not None:
            raise ExecutionError(f"row id {rid} in {self.name} is not live")
        return version

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._live_count}, "
            f"lsn={self._lsn}, indexes={list(self.indexes)})"
        )
