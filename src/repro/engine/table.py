"""MVCC-lite table storage.

Every modification to a table gets a monotonically increasing **log
sequence number** (LSN).  Row versions carry ``(xmin, xmax)``: the LSN that
created them and the LSN that deleted them (``None`` while live).  A
:class:`~repro.engine.snapshot.Snapshot` at LSN ``L`` sees exactly the rows
with ``xmin <= L < xmax`` -- i.e. the table as of modification ``L``.

Why a view-maintenance reproduction needs this: the paper applies new
modifications to base tables *immediately* while the view lags behind.
When a maintenance batch for ``dR_i`` finally runs, its join against the
other base tables must see them at the state the view has already
incorporated, not their current state; joining against the current state is
the *state bug* of Colby et al. that the paper's footnote 1 mentions.
Snapshots make the correct historical read a one-liner.

Updates are recorded as delete-plus-insert under a single LSN, and every
modification appends a :class:`ModEvent` to the table's history; delta
tables in :mod:`repro.ivm.delta` are windows over this history.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.engine.costmodel import OperationCounter
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.index import HashIndex, Index, SortedIndex
from repro.engine.snapshot import Snapshot
from repro.engine.types import Schema


@dataclass
class RowVersion:
    """One stored version of a row."""

    values: tuple
    xmin: int
    xmax: int | None = None

    def visible_at(self, lsn: int) -> bool:
        """Whether this version exists in the snapshot at ``lsn``."""
        return self.xmin <= lsn and (self.xmax is None or self.xmax > lsn)


@dataclass(frozen=True)
class ModEvent:
    """One logical modification, as seen by delta tables.

    ``kind`` is ``"insert"``, ``"delete"``, or ``"update"``; ``old_values``
    / ``new_values`` are the affected row's contents before/after (``None``
    where not applicable).
    """

    lsn: int
    kind: str
    old_values: tuple | None
    new_values: tuple | None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete", "update"):
            raise ValueError(f"unknown modification kind {self.kind!r}")


class ModLog:
    """The shared, chunked modification log of one table.

    There is exactly **one** ModLog per table; every
    :class:`~repro.ivm.delta.DeltaTable` over that table is a zero-copy
    ``(applied_lsn, seen_lsn)`` window into it, so N views hold N offset
    pairs -- not N deques of event copies.

    Structure: an append-only sequence of :class:`ModEvent`, stored as a
    list of fixed-size chunks so very long histories avoid the large-list
    reallocation pattern and :meth:`truncate` can drop whole chunks.  The
    log enforces the invariant that makes windows O(1): every table
    modification bumps the LSN by exactly one and appends exactly one
    event, so the event with LSN ``L`` lives at log position ``L - 1`` and
    any LSN range maps to a contiguous slice with no searching.

    Truncation: long-lived coordinators register every
    :class:`~repro.ivm.delta.DeltaTable` over this log as a *subscriber*
    (weakly referenced -- a garbage-collected reader never pins history).
    :meth:`truncate` drops leading whole chunks once every live
    subscriber's ``applied_lsn`` has passed them; LSN addressing is
    preserved via a base offset, and reads below the truncation point
    raise.
    """

    __slots__ = ("_chunks", "_chunk_size", "_length", "_base",
                 "_subscribers", "__weakref__")

    #: Events per chunk.  Large enough that chunk bookkeeping is noise,
    #: small enough that a truncation pass has useful granularity.
    DEFAULT_CHUNK_SIZE = 4096

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._chunks: list[list[ModEvent]] = []
        self._chunk_size = chunk_size
        self._length = 0
        #: Events dropped from the front by truncation (always a whole
        #: number of chunks, so chunk alignment never shifts).
        self._base = 0
        #: Live readers exposing ``applied_lsn``; weakly held.
        self._subscribers: weakref.WeakSet = weakref.WeakSet()

    def __len__(self) -> int:
        """Logical length: the highest LSN ever appended (truncation does
        not rewind it -- LSN addressing is stable for the log's lifetime)."""
        return self._length

    def __iter__(self) -> Iterator[ModEvent]:
        """Iterate the *retained* events (everything not yet truncated)."""
        for chunk in self._chunks:
            yield from chunk

    @property
    def truncated_lsn(self) -> int:
        """Events at or below this LSN have been dropped."""
        return self._base

    @property
    def retained(self) -> int:
        """Number of events still held in memory."""
        return self._length - self._base

    # -- subscribers ---------------------------------------------------

    def subscribe(self, reader) -> None:
        """Register a reader (anything exposing ``applied_lsn``) whose
        unprocessed window must survive truncation.  Weakly referenced."""
        self._subscribers.add(reader)

    def unsubscribe(self, reader) -> None:
        """Drop a reader's truncation pin (no-op when not subscribed)."""
        self._subscribers.discard(reader)

    def subscriber_count(self) -> int:
        """Number of live subscribers."""
        return len(self._subscribers)

    def safe_truncation_lsn(self) -> int:
        """The highest LSN every live subscriber has already applied.

        With no subscribers the whole history is reclaimable.
        """
        floor = self._length
        for reader in self._subscribers:
            applied = reader.applied_lsn
            if applied < floor:
                floor = applied
        return floor

    def truncate(self, upto_lsn: int | None = None) -> int:
        """Drop leading whole chunks at or below ``upto_lsn``.

        ``upto_lsn`` defaults to :meth:`safe_truncation_lsn`, and is
        clamped to it -- a caller can never truncate history a live
        subscriber still needs.  Only whole chunks are released (the
        offset arithmetic stays chunk-aligned); returns the number of
        events dropped.
        """
        limit = self.safe_truncation_lsn()
        upto = limit if upto_lsn is None else min(upto_lsn, limit)
        dropped = 0
        cs = self._chunk_size
        while (
            self._chunks
            and len(self._chunks[0]) == cs
            and self._base + cs <= upto
        ):
            del self._chunks[0]
            self._base += cs
            dropped += cs
        return dropped

    # -- storage -------------------------------------------------------

    def append(self, event: ModEvent) -> None:
        """Append the event for the next LSN (enforces the density invariant)."""
        if event.lsn != self._length + 1:
            raise ExecutionError(
                f"modification log expects LSN {self._length + 1}, "
                f"got {event.lsn}; the log must stay LSN-dense"
            )
        if not self._chunks or len(self._chunks[-1]) >= self._chunk_size:
            self._chunks.append([])
        self._chunks[-1].append(event)
        self._length += 1

    def window(self, lsn_from: int, lsn_to: int) -> list[ModEvent]:
        """Events with ``lsn_from < lsn <= lsn_to``, oldest first.

        O(window length): the range maps straight to log positions
        ``[lsn_from, lsn_to)``; no scan over the rest of the history.
        Windows reaching below the truncation point raise.
        """
        if not 0 <= lsn_from <= lsn_to <= self._length:
            raise ExecutionError(
                f"log window ({lsn_from}, {lsn_to}] outside [0, {self._length}]"
            )
        if lsn_from < self._base:
            raise ExecutionError(
                f"log window ({lsn_from}, {lsn_to}] reaches below the "
                f"truncation point {self._base}; history was reclaimed"
            )
        if lsn_from == lsn_to:
            return []
        cs = self._chunk_size
        lo, hi = lsn_from - self._base, lsn_to - self._base
        first, last = lo // cs, (hi - 1) // cs
        if first == last:
            return self._chunks[first][lo % cs : (hi - 1) % cs + 1]
        out = self._chunks[first][lo % cs :]
        for i in range(first + 1, last):
            out.extend(self._chunks[i])
        out.extend(self._chunks[last][: (hi - 1) % cs + 1])
        return out

    def __getitem__(self, position: int) -> ModEvent:
        """The event at zero-based log position (= LSN - 1)."""
        if not 0 <= position < self._length:
            raise IndexError(f"log position {position} outside [0, {self._length})")
        if position < self._base:
            raise IndexError(
                f"log position {position} below truncation point {self._base}"
            )
        offset = position - self._base
        return self._chunks[offset // self._chunk_size][
            offset % self._chunk_size
        ]

    def __repr__(self) -> str:
        return (
            f"ModLog(events={self._length}, chunks={len(self._chunks)}, "
            f"truncated={self._base})"
        )


class Table:
    """An append-only versioned heap with secondary indexes and a history."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        counter: OperationCounter | None = None,
    ):
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name {name!r}")
        self.name = name
        self.schema = schema
        self.counter = counter or OperationCounter()
        self._versions: list[RowVersion] = []
        self._live_count = 0
        self._lsn = 0
        #: The single shared modification log; delta tables window into it.
        self.history = ModLog()
        self.indexes: dict[str, Index] = {}
        self._index_on_cache: dict[str, Index | None] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def current_lsn(self) -> int:
        """LSN of the latest modification (0 when pristine)."""
        return self._lsn

    @property
    def live_count(self) -> int:
        """Number of rows visible at the current LSN."""
        return self._live_count

    def version_count(self) -> int:
        """Total stored versions, live and dead (storage footprint)."""
        return len(self._versions)

    def version(self, rid: int) -> RowVersion:
        """The stored version at slot ``rid``."""
        return self._versions[rid]

    def live_rows(self) -> Iterator[tuple]:
        """Iterate current row values (no cost charged; introspection only)."""
        for v in self._versions:
            if v.xmax is None:
                yield v.values

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash", name: str | None = None) -> Index:
        """Create (and backfill) a secondary index on ``column``."""
        pos = self.schema.position(column)
        index_name = name or f"{self.name}_{column}_{kind}"
        if index_name in self.indexes:
            raise SchemaError(f"index {index_name!r} already exists")
        if kind == "hash":
            index: Index = HashIndex(index_name, column)
        elif kind == "sorted":
            index = SortedIndex(index_name, column)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        # Backfill every version (not just live ones) so snapshots taken at
        # any LSN can use the index.
        for rid, v in enumerate(self._versions):
            index.add(v.values[pos], rid)
        self.counter.charge("index_maintains", len(self._versions))
        self.indexes[index_name] = index
        self._index_on_cache.clear()
        return index

    def index_on(self, column: str) -> Index | None:
        """Any index whose key is ``column`` (hash preferred), else None.

        Resolution is cached per column (joins probe this once per lookup);
        :meth:`create_index` and :meth:`vacuum` invalidate the cache.
        """
        try:
            return self._index_on_cache[column]
        except KeyError:
            pass
        hash_hit = None
        sorted_hit = None
        for index in self.indexes.values():
            if index.column == column:
                if isinstance(index, HashIndex):
                    hash_hit = index
                else:
                    sorted_hit = index
        # Explicit None test: indexes define __len__, so an *empty* hash
        # index is falsy and `or` would wrongly skip it.
        hit = hash_hit if hash_hit is not None else sorted_hit
        self._index_on_cache[column] = hit
        return hit

    # ------------------------------------------------------------------
    # Modifications (each bumps the LSN and appends a ModEvent)
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> ModEvent:
        """Insert one row; returns the logged event."""
        row = self.schema.validate_row(values)
        self._lsn += 1
        rid = len(self._versions)
        self._versions.append(RowVersion(values=row, xmin=self._lsn))
        self._live_count += 1
        self.counter.charge("row_writes")
        for index in self.indexes.values():
            pos = self.schema.position(index.column)
            index.add(row[pos], rid)
            self.counter.charge("index_maintains")
        event = ModEvent(lsn=self._lsn, kind="insert", old_values=None, new_values=row)
        self.history.append(event)
        return event

    def delete_rid(self, rid: int) -> ModEvent:
        """Delete the live version at slot ``rid``."""
        version = self._version_live(rid)
        self._lsn += 1
        version.xmax = self._lsn
        self._live_count -= 1
        self.counter.charge("row_writes")
        # Indexes are version-aware: dead versions stay indexed and readers
        # filter by snapshot visibility, so historical probes remain exact.
        # Marking the tombstone still costs index maintenance work.
        self.counter.charge("index_maintains", len(self.indexes))
        event = ModEvent(
            lsn=self._lsn, kind="delete", old_values=version.values, new_values=None
        )
        self.history.append(event)
        return event

    def update_rid(self, rid: int, changes: dict[str, Any]) -> ModEvent:
        """Update columns of the live version at slot ``rid``.

        Recorded as delete-plus-insert under one LSN, so snapshots see the
        row atomically flip from old to new values.
        """
        if not changes:
            raise ExecutionError("update with no changed columns")
        version = self._version_live(rid)
        new_values = list(version.values)
        for column, value in changes.items():
            pos = self.schema.position(column)
            new_values[pos] = self.schema.columns[pos].type.validate(value)
        self._lsn += 1
        version.xmax = self._lsn
        new_rid = len(self._versions)
        new_row = tuple(new_values)
        self._versions.append(RowVersion(values=new_row, xmin=self._lsn))
        self.counter.charge("row_writes", 2)
        for index in self.indexes.values():
            pos = self.schema.position(index.column)
            # Old version stays indexed (version-aware reads filter it);
            # only the new version needs an entry.
            index.add(new_row[pos], new_rid)
            self.counter.charge("index_maintains", 2)
        event = ModEvent(
            lsn=self._lsn,
            kind="update",
            old_values=version.values,
            new_values=new_row,
        )
        self.history.append(event)
        return event

    def find_rids(self, predicate: Callable[[tuple], bool]) -> list[int]:
        """Row ids of live versions matching ``predicate`` (no cost charged)."""
        return [
            rid
            for rid, v in enumerate(self._versions)
            if v.xmax is None and predicate(v.values)
        ]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, lsn: int | None = None) -> Snapshot:
        """The table's state as of ``lsn`` (default: now)."""
        at = self._lsn if lsn is None else lsn
        if at < 0 or at > self._lsn:
            raise ExecutionError(
                f"snapshot LSN {at} outside [0, {self._lsn}] for {self.name}"
            )
        return Snapshot(self, at)

    def events_between(self, lsn_from: int, lsn_to: int) -> list[ModEvent]:
        """History events with ``lsn_from < lsn <= lsn_to`` (a delta window)."""
        return self.history.window(lsn_from, lsn_to)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def vacuum(self, before_lsn: int | None = None) -> int:
        """Reclaim dead row versions no snapshot at or after ``before_lsn``
        can see; returns the number of versions removed.

        Compaction **renumbers row ids** and rebuilds every index, so any
        externally held rid (e.g. an update stream's victim list) becomes
        invalid -- vacuum between workload phases, not during one.  History
        is *not* trimmed: delta tables window over it by LSN, which this
        operation does not disturb.  ``before_lsn`` defaults to the current
        LSN (reclaim everything dead); pass the oldest LSN any live
        snapshot or lagging view still reads to keep those readable.
        """
        watermark = self._lsn if before_lsn is None else before_lsn
        if not 0 <= watermark <= self._lsn:
            raise ExecutionError(
                f"vacuum watermark {watermark} outside [0, {self._lsn}]"
            )
        survivors = [
            v
            for v in self._versions
            if v.xmax is None or v.xmax > watermark
        ]
        reclaimed = len(self._versions) - len(survivors)
        if reclaimed == 0:
            return 0
        self._versions = survivors
        self.counter.charge("row_writes", len(survivors))
        self._index_on_cache.clear()
        # Rebuild every index against the surviving versions.
        for index_name, old_index in list(self.indexes.items()):
            column = old_index.column
            kind = "hash" if isinstance(old_index, HashIndex) else "sorted"
            del self.indexes[index_name]
            self.create_index(column, kind=kind, name=index_name)
        return reclaimed

    # ------------------------------------------------------------------

    def _version_live(self, rid: int) -> RowVersion:
        if not 0 <= rid < len(self._versions):
            raise ExecutionError(f"row id {rid} out of range for {self.name}")
        version = self._versions[rid]
        if version.xmax is not None:
            raise ExecutionError(f"row id {rid} in {self.name} is not live")
        return version

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._live_count}, "
            f"lsn={self._lsn}, indexes={list(self.indexes)})"
        )
