"""Parallel block pipelines: independent :class:`RowBlock` tasks on a pool.

The RowBlock refactor made the chunk the engine's unit of *work*; this
module makes it the unit of *scheduling*.  Three plan shapes fan out:

* scan→filter→project chains (PR 5): no cross-block data flow at all;
* hash joins: the build side is consumed **once on the coordinator** when
  the plan is constructed (:class:`~repro.engine.join.HashJoin` builds in
  ``__init__``), after which probing is per-block independent -- workers
  probe charge-free against the shared read-only table via
  :func:`~repro.engine.join.probe_block`;
* grouped/scalar aggregation: workers bucket their block's values by
  group key (phase 1), a partition-aware scheduler assigns buckets to
  per-worker partitions, partition fold tasks build partial
  :class:`~repro.engine.aggregate.AggregateState`s (phase 2), and a
  single-threaded combine merges them via ``state.merge()``.

Invariants (enforced by ``tests/integration/test_block_equivalence.py``):

1. **Charging stays centralized.**  Workers never touch the shared
   :class:`~repro.engine.costmodel.OperationCounter`.  Each task runs
   charge-free kernels and returns a *local tally* of exactly what serial
   execution would have charged; the single-threaded merge loop replays
   each tally into the real counter as it consumes results **in block
   order**.  Simulated page/CPU costs are therefore bit-identical to
   serial and row-mode execution at any worker count, including through
   IVM delta-join maintenance paths.
2. **Results are bit-identical, floats included.**  Output blocks merge
   in submission order.  For aggregation, SUM/AVG accumulate floats
   sequentially, so reassociating the fold would change low bits: the
   scheduler partitions order-sensitive aggregates by *group key*
   (deterministic ``crc32`` of the key's ``repr`` -- not ``hash()``,
   which string randomization varies across processes), so every group
   folds wholly on one partition in block order.  Order-insensitive
   aggregates (COUNT/MIN/MAX) partition by block round-robin, which
   exercises genuine cross-partition ``merge()`` combining.
3. **Workers adopt the run's recorder.**  Thread workers run under
   :meth:`~repro.obs.recorder.Recorder.wrap`, so per-task
   instrumentation lands in the run's registry; per-operator obs counts
   (``engine.join.hash.*``) ride back with each result and are replayed
   at the merge so both backends report serial-identical totals.

Two backends:

``"thread"`` (default)
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  No pickling, no
    process spin-up; the hash table is shared by reference.
``"process"`` (opt-in)
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Compiled
    closures do not pickle, so tasks carry expression *trees* compiled on
    arrival (:func:`~repro.engine.expr.compile_block_cached` memoizes per
    process).  Hash tables are shipped as a **pickled snapshot spooled to
    a temp file once per query**; each worker process loads and memoizes
    it by token on first use, so the (potentially large) table crosses
    the process boundary once per worker instead of once per block.  See
    DESIGN.md for the tradeoff against per-worker rebuilds.

A chain that *decomposes* but cannot be executed by the configured
backend (unpicklable predicate, foreign operator subclass, snapshot
spool failure) raises :class:`ParallelUnsupported` from
:meth:`ParallelBlockExecutor.execute` **before any charging**; the
database falls back to the serial blocked pipeline and bumps
``engine.parallel.fallback``.

Configuration precedence for the pool size: an explicit
``Database(workers=N)`` argument, else the process-global default set by
:func:`set_default_workers` (the CLI's ``--workers N`` flag), else the
``REPRO_WORKERS`` environment variable, else ``0`` (serial).  The
backend resolves the same way through ``--parallel-backend`` /
``REPRO_PARALLEL_BACKEND``.

Metric family (see ``docs/observability.md``): ``engine.parallel.queries``,
``.tasks``, ``.queue_depth``, ``.merge_wait_ms``, ``.worker_busy_ms``,
``.fallback``, ``engine.parallel.join.{plans,probe_blocks,rows_out,
snapshot_bytes}``, ``engine.parallel.agg.{plans,partitions,fold_tasks}``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
import threading
import time
import weakref
import zlib
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro import obs
from repro.engine.aggregate import (
    ORDER_SENSITIVE_FUNCS,
    Aggregate,
    bucket_block,
    make_aggregate_state,
)
from repro.engine.block import RowBlock, iter_blocks
from repro.engine.costmodel import OperationCounter
from repro.engine.expr import compile_block_cached
from repro.engine.join import HashJoin, probe_block
from repro.engine.operators import Filter, Operator, Project, RowSource, SeqScan

#: Environment variable supplying the default worker count (CI's
#: ``REPRO_WORKERS=4`` tier-1 leg runs the whole suite through the pool).
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable supplying the default backend.
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"
#: Supported pool backends.
BACKENDS = ("thread", "process")

#: Blocks in flight per worker before the merge loop applies
#: backpressure.  Bounds peak memory (at most ``workers * WINDOW`` blocks
#: materialized ahead of the merge) while keeping every worker fed.
SUBMIT_WINDOW_PER_WORKER = 4

_defaults_lock = threading.Lock()
_default_workers: int | None = None
_default_backend: str | None = None


class ParallelUnsupported(RuntimeError):
    """A decomposed chain cannot run on this executor/backend.

    Raised from :meth:`ParallelBlockExecutor.execute` *before any cost is
    charged*, so :meth:`Database._pull` can fall back to the serial
    blocked pipeline (bumping ``engine.parallel.fallback``) with no
    double counting.  ``reason`` is a short dotted-name-safe tag naming
    the cause; the database surfaces it as
    ``engine.parallel.fallback.<reason>`` so fallbacks are diagnosable
    from the metrics summary alone.
    """

    def __init__(self, message: str, reason: str = "unsupported"):
        super().__init__(message)
        self.reason = reason


# ----------------------------------------------------------------------
# Process-global defaults (CLI flags / environment)
# ----------------------------------------------------------------------


def set_default_workers(workers: int | None) -> None:
    """Set the process-global default worker count (``None`` = unset,
    falling back to ``REPRO_WORKERS`` then serial)."""
    global _default_workers
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    with _defaults_lock:
        _default_workers = None if workers is None else int(workers)


def set_default_backend(backend: str | None) -> None:
    """Set the process-global default backend (``None`` = unset)."""
    global _default_backend
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    with _defaults_lock:
        _default_backend = backend


def resolve_workers(explicit: int | None = None) -> int:
    """The effective worker count: explicit > global default > env > 0."""
    if explicit is not None:
        if explicit < 0:
            raise ValueError(f"workers must be >= 0, got {explicit}")
        return int(explicit)
    with _defaults_lock:
        if _default_workers is not None:
            return _default_workers
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
        if workers < 0:
            raise ValueError(f"{WORKERS_ENV} must be >= 0, got {workers}")
        return workers
    return 0


def resolve_backend(explicit: str | None = None) -> str:
    """The effective backend: explicit > global default > env > thread."""
    if explicit is not None:
        if explicit not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {explicit!r}"
            )
        return explicit
    with _defaults_lock:
        if _default_backend is not None:
            return _default_backend
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if raw:
        if raw not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV} must be one of {BACKENDS}, got {raw!r}"
            )
        return raw
    return "thread"


# ----------------------------------------------------------------------
# Plan decomposition: which plans fan out
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChainPlan:
    """A plan decomposed for per-block execution.

    ``stages`` run source-outward and may include :class:`HashJoin` probe
    stages (the join's build side was already consumed on the coordinator
    when the plan was constructed).  ``aggregate`` is a terminal
    :class:`Aggregate`, executed as two-phase partitioned partial
    aggregation.  Index-nested-loop joins stay serial: their probes hit a
    live snapshot index rather than an immutable build table.
    """

    source: Operator  # SeqScan | RowSource
    stages: tuple  # Filter | Project | HashJoin, source-outward
    aggregate: Aggregate | None = None

    @property
    def layout(self) -> Mapping[str, int]:
        if self.aggregate is not None:
            return self.aggregate.layout
        return self.stages[-1].layout if self.stages else self.source.layout


def decompose_chain(plan: Operator) -> ChainPlan | None:
    """Decompose ``plan`` into a parallelizable chain, or ``None``.

    Eligible: any stack of :class:`Filter` / :class:`Project` /
    :class:`HashJoin` (probe side) over a :class:`SeqScan` or
    :class:`RowSource` leaf, optionally topped by one :class:`Aggregate`.
    Everything else (index-nested-loop joins, nested-loop joins,
    operators from outside the engine) runs serially.
    """
    aggregate = None
    node = plan
    if isinstance(node, Aggregate):
        aggregate = node
        node = node.child
    stages: list[Operator] = []
    while isinstance(node, (Filter, Project, HashJoin)):
        stages.append(node)
        node = node.left if isinstance(node, HashJoin) else node.child
    if not isinstance(node, (SeqScan, RowSource)):
        return None
    stages.reverse()
    return ChainPlan(source=node, stages=tuple(stages), aggregate=aggregate)


# ----------------------------------------------------------------------
# Task kernels (charge-free: they fill a local tally, never a counter)
# ----------------------------------------------------------------------

# A compiled stage is ("filter", block_fn, None),
# ("project", positions, out_layout), or
# ("join", (left_pos, table), out_layout).
_CompiledStage = tuple


def _compile_thread_stages(stages: Sequence[Operator]) -> list[_CompiledStage]:
    """Reuse the operators' already-compiled block kernels (same process).

    Join stages carry the coordinator-built hash table *by reference*:
    worker threads probe it read-only, which is safe because the table is
    immutable after :class:`HashJoin` construction.
    """
    compiled: list[_CompiledStage] = []
    for stage in stages:
        if type(stage) is Filter:
            compiled.append(("filter", stage._block_fn, None))
        elif type(stage) is Project:
            compiled.append(("project", tuple(stage._positions), stage.layout))
        else:
            compiled.append(("join", (stage._left_pos, stage._table), stage.layout))
    return compiled


def _portable_stages(stages: Sequence[Operator]) -> tuple[tuple, dict]:
    """Picklable stage specs plus the hash tables they reference.

    Join stages name their table by stage index; the tables dict is
    spooled once per query (see :meth:`ParallelBlockExecutor._prepare`)
    and resolved worker-side by :func:`_load_spool`.
    """
    portable: list[tuple] = []
    tables: dict[int, dict] = {}
    for index, stage in enumerate(stages):
        if type(stage) is Filter:
            portable.append(("filter", stage.predicate, dict(stage.layout)))
        elif type(stage) is Project:
            portable.append(
                ("project", tuple(stage._positions), dict(stage.layout))
            )
        else:
            tables[index] = stage._table
            portable.append(
                ("join", (stage._left_pos, index), dict(stage.layout))
            )
    return tuple(portable), tables


def _apply_stages(
    block: RowBlock | None,
    compiled: Sequence[_CompiledStage],
    tally: dict[str, int],
    obs_counts: dict[str, int],
    stage_stats: list | None = None,
) -> RowBlock | None:
    """Run a block through compiled stages, mirroring the serial pipeline.

    Charge accounting matches ``Filter.blocks``/``Project.blocks``/
    ``HashJoin.blocks`` exactly: one ``compares`` per filter input row,
    one ``tuple_cpu`` per projected row, one ``hash_probes`` per probe
    input row plus ``tuple_cpu`` per joined row, and a block that comes
    up empty stops flowing (the serial pipeline never hands empty blocks
    downstream).  Per-operator obs counts accumulate in ``obs_counts``
    for replay at the merge, so metric totals equal serial execution on
    both backends.

    ``stage_stats``, when a list is supplied (profiled runs only),
    receives one ``(stage_index, rows_in, rows_out)`` triple per stage
    the block reached.  The coordinator reconstructs each stage's exact
    charges from these row counts at the merge -- workers never touch
    profile state.
    """
    for index, (kind, spec, out_layout) in enumerate(compiled):
        rows_in = len(block)
        if kind == "filter":
            tally["compares"] = tally.get("compares", 0) + rows_in
            flags = spec(block)
            if not all(flags):
                keep = [i for i, flag in enumerate(flags) if flag]
                if not keep:
                    if stage_stats is not None:
                        stage_stats.append((index, rows_in, 0))
                    return None
                block = block.take(keep)
        elif kind == "project":
            tally["tuple_cpu"] = tally.get("tuple_cpu", 0) + rows_in
            block = RowBlock.from_columns(
                [block.column(p) for p in spec], out_layout, length=len(block)
            )
        else:
            pos, table = spec
            probes = rows_in
            tally["hash_probes"] = tally.get("hash_probes", 0) + probes
            obs_counts["engine.join.hash.probes"] = (
                obs_counts.get("engine.join.hash.probes", 0) + probes
            )
            obs_counts["engine.parallel.join.probe_blocks"] = (
                obs_counts.get("engine.parallel.join.probe_blocks", 0) + 1
            )
            joined = probe_block(block, pos, table, out_layout)
            if joined is None:
                if stage_stats is not None:
                    stage_stats.append((index, rows_in, 0))
                return None
            rows_out = len(joined)
            tally["tuple_cpu"] = tally.get("tuple_cpu", 0) + rows_out
            for name in (
                "engine.join.hash.rows_out",
                "engine.join.rows_out",
                "engine.parallel.join.rows_out",
            ):
                obs_counts[name] = obs_counts.get(name, 0) + rows_out
            block = joined
        if stage_stats is not None:
            stage_stats.append((index, rows_in, len(block)))
    return block


def _worker_id() -> str:
    """A stable label for the executing worker (thread name or pid)."""
    name = threading.current_thread().name
    if name == "MainThread":  # a process-pool worker's main thread
        return f"pid-{os.getpid()}"
    return name


def _thread_task(
    block: RowBlock,
    compiled: Sequence[_CompiledStage],
    want_stats: bool = False,
) -> tuple[RowBlock | None, dict[str, int], dict[str, int], float, dict | None]:
    """One thread-backend task: kernels only, charges to a local tally."""
    start = time.perf_counter()
    tally = {"tuple_cpu": len(block)}  # the source stage's per-block CPU
    obs_counts: dict[str, int] = {}
    stats = None
    if want_stats:
        stats = {"worker": _worker_id(), "rows_in": len(block), "stages": []}
        out = _apply_stages(block, compiled, tally, obs_counts, stats["stages"])
    else:
        out = _apply_stages(block, compiled, tally, obs_counts)
    busy_ms = (time.perf_counter() - start) * 1e3
    # Lands in the run's registry because the submitter wrapped this task
    # with Recorder.wrap (obs.install_in_thread); no-op otherwise.
    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
    return out, tally, obs_counts, busy_ms, stats


def _thread_agg_task(
    block: RowBlock,
    compiled: Sequence[_CompiledStage],
    agg_compiled: tuple,
    want_stats: bool = False,
) -> tuple[dict | None, dict[str, int], dict[str, int], float, dict | None]:
    """Phase-1 aggregation task: run the stages, then bucket by group key.

    Folding happens in phase 2 (the partition fold tasks); here the
    values are only grouped, so no ``agg_updates`` are tallied yet.
    """
    start = time.perf_counter()
    tally = {"tuple_cpu": len(block)}
    obs_counts: dict[str, int] = {}
    stats = None
    if want_stats:
        stats = {"worker": _worker_id(), "rows_in": len(block), "stages": []}
        out = _apply_stages(block, compiled, tally, obs_counts, stats["stages"])
    else:
        out = _apply_stages(block, compiled, tally, obs_counts)
    buckets = None
    if out is not None:
        group_positions, value_block_fn = agg_compiled
        buckets = bucket_block(out, group_positions, value_block_fn)
    busy_ms = (time.perf_counter() - start) * 1e3
    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
    return buckets, tally, obs_counts, busy_ms, stats


#: Worker-process memo of spooled hash-table snapshots, keyed by spool
#: token.  Cleared on every miss: queries run one at a time per pool, so
#: at most one (current) snapshot stays resident per worker.
_SPOOL_CACHE: dict[str, dict] = {}
_SPOOL_SEQ = itertools.count()


def _load_spool(spool: tuple[str, str]) -> dict:
    """Load (once per worker process) the spooled hash-table snapshot."""
    token, path = spool
    tables = _SPOOL_CACHE.get(token)
    if tables is None:
        with open(path, "rb") as fh:
            tables = pickle.load(fh)
        _SPOOL_CACHE.clear()
        _SPOOL_CACHE[token] = tables
    return tables


def _process_task(
    payload: tuple,
) -> tuple[object, dict[str, int], dict[str, int], float, dict | None]:
    """One process-backend task: compile shipped expression trees, run.

    Plain chains return row tuples (the merge rebuilds a
    :class:`RowBlock` with the chain's output layout); aggregation chains
    return phase-1 buckets, which pickle as-is.
    """
    rows, layout, portable, spool, agg_portable, want_stats = payload
    start = time.perf_counter()
    block = RowBlock.from_rows(rows, layout)
    tables = _load_spool(spool) if spool is not None else None
    compiled: list[_CompiledStage] = []
    for kind, spec, stage_layout in portable:
        if kind == "filter":
            compiled.append(
                ("filter", compile_block_cached(spec, stage_layout), None)
            )
        elif kind == "project":
            compiled.append(("project", spec, stage_layout))
        else:
            pos, table_key = spec
            compiled.append(("join", (pos, tables[table_key]), stage_layout))
    tally = {"tuple_cpu": len(block)}
    obs_counts: dict[str, int] = {}
    stats = None
    if want_stats:
        stats = {"worker": _worker_id(), "rows_in": len(block), "stages": []}
        out = _apply_stages(block, compiled, tally, obs_counts, stats["stages"])
    else:
        out = _apply_stages(block, compiled, tally, obs_counts)
    result: object
    if out is None:
        result = None
    elif agg_portable is not None:
        group_positions, value_expr, child_layout = agg_portable
        value_block_fn = compile_block_cached(value_expr, child_layout)
        result = bucket_block(out, group_positions, value_block_fn)
    else:
        result = out.rows()
    busy_ms = (time.perf_counter() - start) * 1e3
    return result, tally, obs_counts, busy_ms, stats


def _fold_task(
    payload: tuple,
) -> tuple[dict, dict[str, int], float, str]:
    """Phase-2 task: fold one partition's buckets into partial states.

    ``payload`` is ``(func, [(group_key, [values in block order]), ...])``.
    States are built charge-free (``counter=None``); the ``agg_updates``
    the serial fold would have charged ride back as a tally.  Shared by
    both backends (states pickle: they are plain module-level classes).
    """
    func, items = payload
    start = time.perf_counter()
    states: dict[tuple, object] = {}
    folded = 0
    for key, values in items:
        state = make_aggregate_state(func, None)
        state.insert_many(values)
        states[key] = state
        folded += len(values)
    busy_ms = (time.perf_counter() - start) * 1e3
    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
    return states, {"agg_updates": folded}, busy_ms, _worker_id()


def _fold_stats_into_profile(chain: "ChainPlan", stats: dict, busy_ms: float,
                             merge_node) -> None:
    """Fold one task's stage row counts into the plan's profile nodes.

    Runs on the coordinator at the in-order merge (workers never touch
    profile state).  Each stage's exact charges are reconstructed from
    its row counts -- the same arithmetic the worker's fused tally used,
    so per-node attributions sum to exactly the replayed tally: one
    ``tuple_cpu`` per source row, one ``compares`` per filter input row,
    one ``tuple_cpu`` per projected row, one ``hash_probes`` per probe
    input row plus one ``tuple_cpu`` per joined row.
    """
    src_node = chain.source._prof
    rows_in = stats["rows_in"]
    if not getattr(chain.source, "precharged", False):
        # Prescanned delta batches had their scan CPU charged (and
        # attributed) once by the shared scan, not per consuming chain.
        src_node.add("tuple_cpu", rows_in)
    src_node.rows_out += rows_in
    src_node.blocks += 1
    for index, stage_in, stage_out in stats["stages"]:
        stage = chain.stages[index]
        node = stage._prof
        if node is None:  # pragma: no cover - attach always covers chain
            continue
        if type(stage) is Filter:
            node.add("compares", stage_in)
        elif type(stage) is Project:
            node.add("tuple_cpu", stage_in)
        else:  # HashJoin probe
            node.add("hash_probes", stage_in)
            if stage_out:
                node.add("tuple_cpu", stage_out)
        node.rows_out += stage_out
        if stage_out:
            node.blocks += 1
    if merge_node is not None:
        merge_node.add_worker(stats["worker"], busy_ms)


def _partition_for_key(key: tuple, partitions: int) -> int:
    """Deterministic partition of a group key.

    ``crc32`` of the key's ``repr``, *not* built-in ``hash()``: string
    hash randomization would assign groups differently in every worker
    process, breaking cross-process determinism of the fold schedule.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % partitions


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


def _shutdown_pool(pool: Executor) -> None:
    """GC-safety finalizer: release pool threads/processes promptly."""
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _PreparedChain:
    """A validated, backend-compiled chain, ready to fan out."""

    task: Callable
    make_args: Callable[[RowBlock], tuple]
    fold_task: Callable
    spool: tuple[str, str] | None  # (token, temp file) for process joins
    has_join: bool


class ParallelBlockExecutor:
    """Fans a chain's blocks out to a worker pool; merges in block order.

    One executor (and its lazily created pool) is owned by a
    :class:`~repro.engine.database.Database` and reused across queries.
    :meth:`close` shuts the pool down deterministically; a dropped
    executor is also finalized via :mod:`weakref` so abandoned databases
    cannot strand worker threads.
    """

    def __init__(self, workers: int, backend: str = "thread"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.workers = int(workers)
        self.backend = backend
        self._pool: Executor | None = None
        self._finalizer: weakref.finalize | None = None
        self._spools: set[str] = set()

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.backend == "thread":
                pool: Executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-block-worker",
                )
            else:
                import multiprocessing

                try:
                    # fork skips re-importing the package per worker;
                    # fall back to the platform default elsewhere.
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context()
                pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            self._pool = pool
            self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent; waits for workers to exit)."""
        pool, self._pool = self._pool, None
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        spools, self._spools = self._spools, set()
        for path in spools:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- preparation --------------------------------------------------------

    def _prepare(self, chain: ChainPlan) -> _PreparedChain:
        """Validate and backend-compile a chain; charge-free.

        Raises :class:`ParallelUnsupported` when the chain decomposed but
        cannot be satisfied here: an operator subclass without the
        engine's compiled kernels, a predicate or hash table that does
        not pickle for process workers, or a snapshot spool failure.
        """
        for stage in chain.stages:
            if type(stage) not in (Filter, Project, HashJoin):
                raise ParallelUnsupported(
                    f"stage {type(stage).__name__} has no parallel kernel",
                    reason="unsupported_stage",
                )
        agg = chain.aggregate
        if agg is not None and type(agg) is not Aggregate:
            raise ParallelUnsupported(
                f"aggregate {type(agg).__name__} has no parallel kernel",
                reason="unsupported_aggregate",
            )

        # Profiled query: workers additionally ship per-stage row counts
        # back for the coordinator to fold into the plan's profile nodes.
        want_stats = getattr(chain.source, "_prof", None) is not None

        if self.backend == "thread":
            compiled = _compile_thread_stages(chain.stages)
            if agg is None:
                task: Callable = _thread_task

                def make_args(block: RowBlock) -> tuple:
                    return (block, compiled, want_stats)

            else:
                task = _thread_agg_task
                agg_compiled = (
                    tuple(agg._group_positions), agg._value_block_fn
                )

                def make_args(block: RowBlock) -> tuple:
                    return (block, compiled, agg_compiled, want_stats)

            fold: Callable = _fold_task
            recorder = obs.get_recorder()
            if recorder is not None:
                task = recorder.wrap(task)  # adopt the run's recorder
                fold = recorder.wrap(fold)
            return _PreparedChain(
                task, make_args, fold,
                spool=None,
                has_join=any(type(s) is HashJoin for s in chain.stages),
            )

        portable, tables = _portable_stages(chain.stages)
        agg_portable = None
        if agg is not None:
            agg_portable = (
                tuple(agg._group_positions),
                agg.value,
                dict(agg.child.layout),
            )
        try:
            pickle.dumps(
                (portable, agg_portable), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise ParallelUnsupported(
                f"plan does not pickle for process workers: {exc}",
                reason="unpicklable_plan",
            ) from exc
        spool = None
        if tables:
            try:
                payload = pickle.dumps(
                    tables, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as exc:
                raise ParallelUnsupported(
                    f"hash-table snapshot does not pickle: {exc}",
                    reason="unpicklable_snapshot",
                ) from exc
            try:
                fd, path = tempfile.mkstemp(
                    prefix="repro-hashspool-", suffix=".pkl"
                )
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
            except OSError as exc:
                raise ParallelUnsupported(
                    f"cannot spool hash-table snapshot: {exc}",
                    reason="spool_failed",
                ) from exc
            self._spools.add(path)
            obs.observe("engine.parallel.join.snapshot_bytes", len(payload))
            spool = (f"{os.getpid()}-{next(_SPOOL_SEQ)}", path)
        source_layout = dict(chain.source.layout)

        def make_args(block: RowBlock) -> tuple:
            return (
                (
                    block.rows(), source_layout, portable, spool,
                    agg_portable, want_stats,
                ),
            )

        return _PreparedChain(
            _process_task, make_args, _fold_task,
            spool=spool,
            has_join=bool(tables),
        )

    def _discard_spool(self, prepared: _PreparedChain) -> None:
        if prepared.spool is None:
            return
        _, path = prepared.spool
        prepared.spool = None
        self._spools.discard(path)
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        chain: ChainPlan,
        block_size: int,
        counter: OperationCounter,
    ) -> Iterator[RowBlock]:
        """Yield the chain's output blocks, in block order.

        Validation (:meth:`_prepare`) happens eagerly -- a chain this
        executor cannot run raises :class:`ParallelUnsupported` here,
        before anything is charged.  All cost charging happens inside the
        returned generator, on the consuming thread: the scan's setup
        (page reads) before the first task is submitted, and each task's
        local tally as its result is merged -- so charges land exactly
        when blocks are consumed and an abandoned iteration cancels
        whatever has not started.
        """
        prepared = self._prepare(chain)
        if chain.aggregate is not None:
            return self._run_aggregate(prepared, chain, block_size, counter)
        return self._run_stream(prepared, chain, block_size, counter)

    def _merged_tasks(
        self,
        prepared: _PreparedChain,
        chain: ChainPlan,
        block_size: int,
        counter: OperationCounter,
    ) -> Iterator[object]:
        """Fan source blocks out; yield task outputs in block order.

        Replays each task's cost tally into ``counter`` and its obs
        counts into the run's registry as results are consumed; skips
        tasks whose block came up empty (their tallies still replay,
        matching the serial pipeline's charges for filtered-out blocks).
        """
        source = chain.source
        if isinstance(source, SeqScan):
            source._charge_scan_setup()  # identical charge + obs to serial
            source_rows: Sequence[tuple] = source.snapshot.row_list()
        else:
            source_rows = source._rows
        # Workers always seed their tally with the source stage's per-block
        # tuple_cpu; for a prescanned delta batch that charge was already
        # paid by the shared scan, so it is backed out at the merge (the
        # single point where all charging happens).
        precharged = getattr(source, "precharged", False)
        merge_node = None
        if getattr(source, "_prof", None) is not None:
            from repro.obs import attrib

            profile = attrib.active_profile()
            if profile is not None:
                merge_node = profile.merge_node()
        pool = self._ensure_pool()
        window = self.workers * SUBMIT_WINDOW_PER_WORKER
        blocks = iter_blocks(source_rows, source.layout, block_size)
        pending: deque[tuple[Future, int]] = deque()
        tasks = 0
        task = prepared.task
        make_args = prepared.make_args
        try:
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    block = next(blocks, None)
                    if block is None:
                        exhausted = True
                        break
                    pending.append(
                        (pool.submit(task, *make_args(block)), len(block))
                    )
                    tasks += 1
                    obs.gauge_max("engine.parallel.queue_depth", len(pending))
                if not pending:
                    break
                future, in_rows = pending.popleft()
                wait_start = time.perf_counter()
                out, tally, obs_counts, busy_ms, stats = future.result()
                if precharged and in_rows:
                    tally["tuple_cpu"] -= in_rows  # >= 0: seeded with in_rows
                wait_ms = (time.perf_counter() - wait_start) * 1e3
                obs.observe("engine.parallel.merge_wait_ms", wait_ms)
                if self.backend == "process":
                    # Process workers cannot adopt the parent's recorder;
                    # their busy time rides back with the result.
                    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
                for field_name, count in tally.items():
                    if count:
                        counter.charge(field_name, count)
                for name, amount in obs_counts.items():
                    if amount:
                        obs.counter(name, amount)
                if stats is not None:
                    _fold_stats_into_profile(chain, stats, busy_ms, merge_node)
                    if merge_node is not None:
                        merge_node.wall_ms += wait_ms
                if out is None:
                    continue
                yield out
        finally:
            obs.counter("engine.parallel.tasks", tasks)
            for future, _ in pending:
                future.cancel()

    def _run_stream(
        self,
        prepared: _PreparedChain,
        chain: ChainPlan,
        block_size: int,
        counter: OperationCounter,
    ) -> Iterator[RowBlock]:
        obs.counter("engine.parallel.queries")
        if prepared.has_join:
            obs.counter("engine.parallel.join.plans")
        out_layout = chain.layout
        try:
            for out in self._merged_tasks(prepared, chain, block_size, counter):
                if self.backend == "process":
                    out = RowBlock.from_rows(out, out_layout)
                yield out
        finally:
            self._discard_spool(prepared)

    def _run_aggregate(
        self,
        prepared: _PreparedChain,
        chain: ChainPlan,
        block_size: int,
        counter: OperationCounter,
    ) -> Iterator[RowBlock]:
        """Two-phase partitioned partial aggregation.

        Phase 1 tasks bucket each block's values by group key; the merge
        loop assigns buckets to one of ``workers`` partitions -- by group
        key (crc32) for order-sensitive aggregates, round-robin by block
        for order-insensitive ones (see the module docstring).  Phase 2
        folds each partition into partial states on the pool, and the
        single-threaded combine merges them with ``state.merge()`` in
        partition order.
        """
        agg = chain.aggregate
        assert agg is not None
        obs.counter("engine.parallel.queries")
        if prepared.has_join:
            obs.counter("engine.parallel.join.plans")
        obs.counter("engine.parallel.agg.plans")
        func = agg.func
        by_key = func in ORDER_SENSITIVE_FUNCS
        partitions = self.workers
        stores: list[dict] = [{} for _ in range(partitions)]
        rows_in = 0
        fold_futures: list[Future] = []
        try:
            merged = self._merged_tasks(prepared, chain, block_size, counter)
            for index, buckets in enumerate(merged):
                for key, values in buckets.items():
                    rows_in += len(values)
                    part = (
                        _partition_for_key(key, partitions)
                        if by_key
                        else index % partitions
                    )
                    store = stores[part]
                    bucket = store.get(key)
                    if bucket is None:
                        store[key] = values  # task-local list; safe to own
                    else:
                        bucket.extend(values)
            payloads = [
                (func, list(store.items())) for store in stores if store
            ]
            obs.counter("engine.parallel.agg.partitions", partitions)
            obs.counter("engine.parallel.agg.fold_tasks", len(payloads))
            pool = self._ensure_pool()
            fold_futures = [
                pool.submit(prepared.fold_task, payload)
                for payload in payloads
            ]
            agg_node = agg._prof
            merge_node = None
            if agg_node is not None:
                from repro.obs import attrib

                profile = attrib.active_profile()
                if profile is not None:
                    merge_node = profile.merge_node()
            groups: dict[tuple, object] = {}
            for future in fold_futures:
                states, tally, busy_ms, worker = future.result()
                if self.backend == "process":
                    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
                for field_name, count in tally.items():
                    if count:
                        counter.charge(field_name, count)
                if agg_node is not None:
                    # The fold's agg_updates are the aggregate operator's
                    # charges, identical to the serial insert_many total.
                    agg_node.add_tally(tally)
                    if merge_node is not None:
                        merge_node.add_worker(worker, busy_ms)
                for key, state in states.items():
                    existing = groups.get(key)
                    if existing is None:
                        groups[key] = state
                    else:
                        existing.merge(state)
            obs.counter("engine.aggregate.rows_in", rows_in)
            obs.counter("engine.aggregate.groups_out", len(groups))
            if not groups and not agg._group_positions:
                # Scalar aggregate over empty input, as in serial.
                out_rows = [(make_aggregate_state(func, None).result(),)]
            else:
                out_rows = [
                    key + (groups[key].result(),)
                    for key in sorted(groups, key=repr)
                ]
            if agg_node is not None:
                agg_node.rows_out += len(out_rows)
                if out_rows:
                    agg_node.blocks += -(-len(out_rows) // block_size)
            yield from iter_blocks(out_rows, agg.layout, block_size)
        finally:
            for future in fold_futures:
                future.cancel()
            self._discard_spool(prepared)

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "pooled"
        return (
            f"ParallelBlockExecutor(workers={self.workers}, "
            f"backend={self.backend!r}, {state})"
        )
