"""Parallel block pipelines: independent :class:`RowBlock` tasks on a pool.

The RowBlock refactor made the chunk the engine's unit of *work*; this
module makes it the unit of *scheduling*.  A scan→filter→project chain
has no cross-block data flow, so its blocks can be evaluated
concurrently -- the shape high-throughput IVM engines (DBToaster-style
delta pipelines) get their speed from -- provided three invariants hold:

1. **Charging stays centralized.**  Workers never touch the shared
   :class:`~repro.engine.costmodel.OperationCounter`.  Each task runs
   charge-free compiled kernels over its block and returns a *local
   tally* of exactly what serial execution would have charged; the
   single-threaded merge loop replays each tally into the real counter
   as it consumes results **in block order**.  Simulated page/CPU costs
   are therefore bit-identical to serial and row-mode execution (the
   PR 3 invariant, enforced by
   ``tests/integration/test_block_equivalence.py``), and
   ``counter.window()`` brackets still mean what they meant.
2. **Results merge in block order.**  The merge yields output blocks in
   submission order regardless of completion order, so result rows are
   byte-identical to serial execution.
3. **Workers adopt the run's recorder.**  Thread workers run under
   :meth:`~repro.obs.recorder.Recorder.wrap` /
   ``obs.install_in_thread``, so per-task instrumentation
   (``engine.parallel.worker_busy_ms``) lands in the same registry as
   the merge thread's metrics.

Two backends:

``"thread"`` (default)
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  No pickling, no
    process spin-up; under the GIL it overlaps rather than multiplies
    pure-Python kernel time, so its value is pipeline overlap and the
    scheduling machinery itself.
``"process"`` (opt-in)
    A :class:`~concurrent.futures.ProcessPoolExecutor` for CPU-bound
    ``compile_block`` expression evaluation.  Compiled closures do not
    pickle, so tasks carry the expression *tree* plus raw row tuples and
    the worker compiles kernels on arrival
    (:func:`~repro.engine.expr.compile_block_cached` memoizes per
    process).  Worth it when per-row expression work dominates the
    per-block IPC cost; see ``benchmarks/bench_parallel_pipeline.py``.

Configuration precedence for the pool size: an explicit
``Database(workers=N)`` argument, else the process-global default set by
:func:`set_default_workers` (the CLI's ``--workers N`` flag), else the
``REPRO_WORKERS`` environment variable, else ``0`` (serial).  Workers
``>= 1`` route eligible plans through the pool; ``0`` keeps the serial
blocked pipeline.  The backend resolves the same way through
``--parallel-backend`` / ``REPRO_PARALLEL_BACKEND``.

Metric family (see ``docs/observability.md``): ``engine.parallel.queries``,
``.tasks``, ``.queue_depth``, ``.merge_wait_ms``, ``.worker_busy_ms``.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro import obs
from repro.engine.block import RowBlock, iter_blocks
from repro.engine.costmodel import OperationCounter
from repro.engine.expr import Expression, compile_block_cached
from repro.engine.operators import Filter, Operator, Project, RowSource, SeqScan

#: Environment variable supplying the default worker count (CI's
#: ``REPRO_WORKERS=4`` tier-1 leg runs the whole suite through the pool).
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable supplying the default backend.
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"
#: Supported pool backends.
BACKENDS = ("thread", "process")

#: Blocks in flight per worker before the merge loop applies
#: backpressure.  Bounds peak memory (at most ``workers * WINDOW`` blocks
#: materialized ahead of the merge) while keeping every worker fed.
SUBMIT_WINDOW_PER_WORKER = 4

_defaults_lock = threading.Lock()
_default_workers: int | None = None
_default_backend: str | None = None


# ----------------------------------------------------------------------
# Process-global defaults (CLI flags / environment)
# ----------------------------------------------------------------------


def set_default_workers(workers: int | None) -> None:
    """Set the process-global default worker count (``None`` = unset,
    falling back to ``REPRO_WORKERS`` then serial)."""
    global _default_workers
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    with _defaults_lock:
        _default_workers = None if workers is None else int(workers)


def set_default_backend(backend: str | None) -> None:
    """Set the process-global default backend (``None`` = unset)."""
    global _default_backend
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    with _defaults_lock:
        _default_backend = backend


def resolve_workers(explicit: int | None = None) -> int:
    """The effective worker count: explicit > global default > env > 0."""
    if explicit is not None:
        if explicit < 0:
            raise ValueError(f"workers must be >= 0, got {explicit}")
        return int(explicit)
    with _defaults_lock:
        if _default_workers is not None:
            return _default_workers
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
        if workers < 0:
            raise ValueError(f"{WORKERS_ENV} must be >= 0, got {workers}")
        return workers
    return 0


def resolve_backend(explicit: str | None = None) -> str:
    """The effective backend: explicit > global default > env > thread."""
    if explicit is not None:
        if explicit not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {explicit!r}"
            )
        return explicit
    with _defaults_lock:
        if _default_backend is not None:
            return _default_backend
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if raw:
        if raw not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV} must be one of {BACKENDS}, got {raw!r}"
            )
        return raw
    return "thread"


# ----------------------------------------------------------------------
# Plan decomposition: which plans fan out
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChainPlan:
    """A scan→filter→project chain decomposed for per-block execution.

    ``stages`` run source-outward.  Joins and aggregates are excluded on
    purpose: a hash join's build side and an aggregate's fold order are
    cross-block state, so those operators stay on the serial pipeline
    (the merge consumes whatever the chain under them produced).
    """

    source: Operator  # SeqScan | RowSource
    stages: tuple  # Filter | Project, source-outward

    @property
    def layout(self) -> Mapping[str, int]:
        return self.stages[-1].layout if self.stages else self.source.layout


def decompose_chain(plan: Operator) -> ChainPlan | None:
    """Decompose ``plan`` into a parallelizable chain, or ``None``.

    Eligible: any stack of :class:`Filter` / :class:`Project` over a
    :class:`SeqScan` or :class:`RowSource` leaf.  Everything else (joins,
    aggregates, operators from outside the engine) runs serially.
    """
    stages: list[Operator] = []
    node = plan
    while isinstance(node, (Filter, Project)):
        stages.append(node)
        node = node.child
    if not isinstance(node, (SeqScan, RowSource)):
        return None
    stages.reverse()
    return ChainPlan(source=node, stages=tuple(stages))


# ----------------------------------------------------------------------
# Task kernels (charge-free: they fill a local tally, never a counter)
# ----------------------------------------------------------------------

# A compiled stage is ("filter", block_fn, None) or
# ("project", positions, out_layout).
_CompiledStage = tuple


def _compile_thread_stages(stages: Sequence[Operator]) -> list[_CompiledStage]:
    """Reuse the operators' already-compiled block kernels (same process)."""
    compiled: list[_CompiledStage] = []
    for stage in stages:
        if isinstance(stage, Filter):
            compiled.append(("filter", stage._block_fn, None))
        else:
            compiled.append(("project", tuple(stage._positions), stage.layout))
    return compiled


def _portable_stages(stages: Sequence[Operator]) -> tuple:
    """Picklable stage specs: expression trees + layouts, no closures."""
    portable: list[tuple] = []
    for stage in stages:
        if isinstance(stage, Filter):
            portable.append(("filter", stage.predicate, dict(stage.layout)))
        else:
            portable.append(
                ("project", tuple(stage._positions), dict(stage.layout))
            )
    return tuple(portable)


def _apply_stages(
    block: RowBlock | None,
    compiled: Sequence[_CompiledStage],
    tally: dict[str, int],
) -> RowBlock | None:
    """Run a block through compiled stages, mirroring the serial pipeline.

    Charge accounting matches ``Filter.blocks``/``Project.blocks``
    exactly: one ``compares`` per filter input row, one ``tuple_cpu`` per
    projected row, and a block that filters to empty stops flowing (the
    serial pipeline never hands empty blocks downstream).
    """
    for kind, spec, out_layout in compiled:
        if kind == "filter":
            tally["compares"] = tally.get("compares", 0) + len(block)
            flags = spec(block)
            if not all(flags):
                keep = [i for i, flag in enumerate(flags) if flag]
                if not keep:
                    return None
                block = block.take(keep)
        else:
            tally["tuple_cpu"] = tally.get("tuple_cpu", 0) + len(block)
            block = RowBlock.from_columns(
                [block.column(p) for p in spec], out_layout, length=len(block)
            )
    return block


def _thread_task(
    block: RowBlock, compiled: Sequence[_CompiledStage]
) -> tuple[RowBlock | None, dict[str, int], float]:
    """One thread-backend task: kernels only, charges to a local tally."""
    start = time.perf_counter()
    tally = {"tuple_cpu": len(block)}  # the source stage's per-block CPU
    out = _apply_stages(block, compiled, tally)
    busy_ms = (time.perf_counter() - start) * 1e3
    # Lands in the run's registry because the submitter wrapped this task
    # with Recorder.wrap (obs.install_in_thread); no-op otherwise.
    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
    return out, tally, busy_ms


def _process_task(
    payload: tuple,
) -> tuple[list[tuple] | None, dict[str, int], float]:
    """One process-backend task: compile shipped expression trees, run.

    Returns plain row tuples (blocks would pickle fine but carry nothing
    extra back); the merge rebuilds a :class:`RowBlock` with the chain's
    output layout.
    """
    rows, layout, portable = payload
    start = time.perf_counter()
    block = RowBlock.from_rows(rows, layout)
    compiled: list[_CompiledStage] = []
    for kind, spec, stage_layout in portable:
        if kind == "filter":
            compiled.append(
                ("filter", compile_block_cached(spec, stage_layout), None)
            )
        else:
            compiled.append(("project", spec, stage_layout))
    tally = {"tuple_cpu": len(block)}
    out = _apply_stages(block, compiled, tally)
    busy_ms = (time.perf_counter() - start) * 1e3
    return (None if out is None else out.rows(), tally, busy_ms)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


def _shutdown_pool(pool: Executor) -> None:
    """GC-safety finalizer: release pool threads/processes promptly."""
    pool.shutdown(wait=False, cancel_futures=True)


class ParallelBlockExecutor:
    """Fans a chain's blocks out to a worker pool; merges in block order.

    One executor (and its lazily created pool) is owned by a
    :class:`~repro.engine.database.Database` and reused across queries.
    :meth:`close` shuts the pool down deterministically; a dropped
    executor is also finalized via :mod:`weakref` so abandoned databases
    cannot strand worker threads.
    """

    def __init__(self, workers: int, backend: str = "thread"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.workers = int(workers)
        self.backend = backend
        self._pool: Executor | None = None
        self._finalizer: weakref.finalize | None = None

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.backend == "thread":
                pool: Executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-block-worker",
                )
            else:
                import multiprocessing

                try:
                    # fork skips re-importing the package per worker;
                    # fall back to the platform default elsewhere.
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context()
                pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            self._pool = pool
            self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent; waits for workers to exit)."""
        pool, self._pool = self._pool, None
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        chain: ChainPlan,
        block_size: int,
        counter: OperationCounter,
    ) -> Iterator[RowBlock]:
        """Yield the chain's output blocks, in block order.

        All cost charging happens here, on the consuming thread: the
        scan's setup (page reads) before the first task is submitted, and
        each task's local tally as its result is merged.  The iterator is
        a generator, so charges land exactly when blocks are consumed and
        an abandoned iteration cancels whatever has not started.
        """
        source = chain.source
        if isinstance(source, SeqScan):
            source._charge_scan_setup()  # identical charge + obs to serial
            source_rows: Sequence[tuple] = source.snapshot.row_list()
        else:
            source_rows = source._rows

        task: Callable
        if self.backend == "thread":
            compiled = _compile_thread_stages(chain.stages)

            def make_args(block: RowBlock) -> tuple:
                return (block, compiled)

            task = _thread_task
            recorder = obs.get_recorder()
            if recorder is not None:
                task = recorder.wrap(task)  # adopt the run's recorder
        else:
            portable = _portable_stages(chain.stages)
            source_layout = dict(source.layout)

            def make_args(block: RowBlock) -> tuple:
                return ((block.rows(), source_layout, portable),)

            task = _process_task

        out_layout = chain.layout
        pool = self._ensure_pool()
        window = self.workers * SUBMIT_WINDOW_PER_WORKER
        blocks = iter_blocks(source_rows, source.layout, block_size)
        pending: deque[Future] = deque()
        tasks = 0
        obs.counter("engine.parallel.queries")
        try:
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    block = next(blocks, None)
                    if block is None:
                        exhausted = True
                        break
                    pending.append(pool.submit(task, *make_args(block)))
                    tasks += 1
                    obs.gauge_max("engine.parallel.queue_depth", len(pending))
                if not pending:
                    break
                future = pending.popleft()
                wait_start = time.perf_counter()
                out, tally, busy_ms = future.result()
                obs.observe(
                    "engine.parallel.merge_wait_ms",
                    (time.perf_counter() - wait_start) * 1e3,
                )
                if self.backend == "process":
                    # Process workers cannot adopt the parent's recorder;
                    # their busy time rides back with the result.
                    obs.observe("engine.parallel.worker_busy_ms", busy_ms)
                for field_name, count in tally.items():
                    if count:
                        counter.charge(field_name, count)
                if out is None:
                    continue
                if self.backend == "process":
                    out = RowBlock.from_rows(out, out_layout)
                yield out
        finally:
            obs.counter("engine.parallel.tasks", tasks)
            for future in pending:
                future.cancel()

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "pooled"
        return (
            f"ParallelBlockExecutor(workers={self.workers}, "
            f"backend={self.backend!r}, {state})"
        )
