"""Scalar expressions and predicates.

Expressions form a small tree (column references, constants, comparisons,
boolean connectives, arithmetic).  They are *compiled* against a row layout
-- a mapping from qualified column names like ``"S.suppkey"`` to tuple
positions -- into plain Python closures, so per-row evaluation inside scans
and joins costs one function call, not a tree walk.

Qualified names: operators tag every column with its table alias.  A bare
``ColumnRef("suppkey")`` resolves if exactly one alias exposes that column;
ambiguity is a :class:`~repro.engine.errors.SchemaError`.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.engine.errors import SchemaError

if TYPE_CHECKING:  # circular import guard; block.py is expression-free
    from repro.engine.block import RowBlock

RowPredicate = Callable[[tuple], Any]
#: A compiled block evaluator: RowBlock -> list of per-row values.
BlockEvaluator = Callable[["RowBlock"], list]

_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expression(ABC):
    """Base class for scalar expressions."""

    @abstractmethod
    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        """Compile to a closure evaluating this expression on a row tuple.

        ``layout`` maps qualified column names to tuple positions.
        """

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        """Compile to a closure evaluating this expression on a whole
        :class:`~repro.engine.block.RowBlock`, returning one value per row.

        Column resolution happens here, once per compile -- the returned
        closure does no per-row dictionary work.  The base implementation
        falls back to mapping the row compilation over the block, so any
        expression subclass is block-evaluable; the core node types
        override it with columnar forms (a column reference returns the
        block's column list itself, zero-copy).
        """
        fn = self.compile(layout)
        return lambda block: [fn(row) for row in block.rows()]

    @abstractmethod
    def references(self) -> frozenset[str]:
        """Column names (as written, possibly unqualified) this expression reads."""

    # Operator sugar ---------------------------------------------------

    def __eq__(self, other: object):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other):
        return Comparison(">=", self, _wrap(other))

    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __truediv__(self, other):
        return BinOp("/", self, _wrap(other))

    def __hash__(self) -> int:  # expressions are identity-hashed
        return id(self)


def _wrap(value: Any) -> Expression:
    """Lift a plain Python value into a :class:`Const`."""
    if isinstance(value, Expression):
        return value
    return Const(value)


class ColumnRef(Expression):
    """A reference to a column, optionally qualified as ``alias.column``."""

    def __init__(self, name: str):
        if not name:
            raise SchemaError("empty column reference")
        self.name = name

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        pos = resolve_column(self.name, layout)
        return lambda row: row[pos]

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        pos = resolve_column(self.name, layout)
        return lambda block: block.column(pos)

    def references(self) -> frozenset[str]:
        return frozenset([self.name])

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Const(Expression):
    """A literal value."""

    def __init__(self, value: Any):
        self.value = value

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        value = self.value
        return lambda row: value

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        value = self.value
        return lambda block: [value] * len(block)

    def references(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Comparison(Expression):
    """``left <op> right`` for a relational comparison operator."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISONS:
            raise SchemaError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        fn = _COMPARISONS[self.op]
        left = self.left.compile(layout)
        right = self.right.compile(layout)
        return lambda row: fn(left(row), right(row))

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        fn = _COMPARISONS[self.op]
        left = self.left.compile_block(layout)
        right = self.right.compile_block(layout)
        return lambda block: list(map(fn, left(block), right(block)))

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def equijoin_columns(self) -> tuple[str, str] | None:
        """``(left_col, right_col)`` when this is ``col = col``, else None.

        The planner uses this to recognize equi-join predicates eligible
        for index-nested-loop or hash joins.
        """
        if (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        ):
            return (self.left.name, self.right.name)
        return None

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BinOp(Expression):
    """Arithmetic on two sub-expressions."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITHMETIC:
            raise SchemaError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        fn = _ARITHMETIC[self.op]
        left = self.left.compile(layout)
        right = self.right.compile(layout)
        return lambda row: fn(left(row), right(row))

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        fn = _ARITHMETIC[self.op]
        left = self.left.compile_block(layout)
        right = self.right.compile_block(layout)
        return lambda block: list(map(fn, left(block), right(block)))

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolOp(Expression):
    """``AND`` / ``OR`` over two or more predicates."""

    def __init__(self, op: str, operands: list[Expression]):
        if op not in ("and", "or"):
            raise SchemaError(f"unknown boolean operator {op!r}")
        if len(operands) < 2:
            raise SchemaError(f"{op} needs at least two operands")
        self.op = op
        self.operands = list(operands)

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        compiled = [e.compile(layout) for e in self.operands]
        if self.op == "and":
            return lambda row: all(fn(row) for fn in compiled)
        return lambda row: any(fn(row) for fn in compiled)

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        compiled = [e.compile_block(layout) for e in self.operands]
        combine = all if self.op == "and" else any
        return lambda block: [
            combine(values) for values in zip(*(fn(block) for fn in compiled))
        ]

    def references(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for e in self.operands:
            out |= e.references()
        return out

    def __repr__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(repr(e) for e in self.operands) + ")"


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def compile(self, layout: Mapping[str, int]) -> RowPredicate:
        fn = self.operand.compile(layout)
        return lambda row: not fn(row)

    def compile_block(self, layout: Mapping[str, int]) -> BlockEvaluator:
        fn = self.operand.compile_block(layout)
        return lambda block: [not value for value in fn(block)]

    def references(self) -> frozenset[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"not_({self.operand!r})"


# ----------------------------------------------------------------------
# Construction helpers (the public expression-building vocabulary)
# ----------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Reference a column: ``col("S.suppkey")`` or bare ``col("suppkey")``."""
    return ColumnRef(name)


def lit(value: Any) -> Const:
    """A literal constant."""
    return Const(value)


def and_(*operands: Expression) -> Expression:
    """Conjunction of one or more predicates."""
    if not operands:
        raise SchemaError("and_() needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    return BoolOp("and", list(operands))


def or_(*operands: Expression) -> Expression:
    """Disjunction of one or more predicates."""
    if not operands:
        raise SchemaError("or_() needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    return BoolOp("or", list(operands))


def not_(operand: Expression) -> Not:
    """Negation of a predicate."""
    return Not(operand)


#: Per-process memo for :func:`compile_block_cached`.  Keys are
#: ``(repr(expr), sorted layout items)`` -- expression reprs are
#: deterministic structural descriptions, so two pickled copies of the
#: same tree (one per task shipped to a worker process) share one kernel.
_BLOCK_KERNEL_CACHE: dict[tuple[str, tuple], BlockEvaluator] = {}
_BLOCK_KERNEL_CACHE_LIMIT = 512


def compile_block_cached(
    expr: Expression, layout: Mapping[str, int]
) -> BlockEvaluator:
    """``expr.compile_block(layout)``, memoized per process.

    The parallel executor's multiprocessing backend cannot ship compiled
    closures (they do not pickle), so each task carries the expression
    *tree* and the worker compiles it on arrival.  Without a memo every
    block of the same query would recompile the same predicate; this
    cache keys on the expression's structural repr plus the layout, so a
    worker compiles each distinct (expression, layout) pair once.
    """
    key = (repr(expr), tuple(sorted(layout.items())))
    kernel = _BLOCK_KERNEL_CACHE.get(key)
    if kernel is None:
        if len(_BLOCK_KERNEL_CACHE) >= _BLOCK_KERNEL_CACHE_LIMIT:
            _BLOCK_KERNEL_CACHE.clear()
        kernel = _BLOCK_KERNEL_CACHE[key] = expr.compile_block(layout)
    return kernel


def resolve_column(name: str, layout: Mapping[str, int]) -> int:
    """Resolve a possibly unqualified column name to a tuple position.

    Qualified names must match exactly; bare names match any ``alias.name``
    entry and must be unambiguous.
    """
    if name in layout:
        return layout[name]
    if "." not in name:
        matches = [
            pos for qualified, pos in layout.items()
            if qualified.rpartition(".")[2] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column {name!r} in layout {list(layout)}")
    raise SchemaError(f"unknown column {name!r} in layout {list(layout)}")
