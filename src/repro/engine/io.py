"""dbgen-compatible ``.tbl`` table import/export.

TPC's ``dbgen`` emits one pipe-delimited ``<table>.tbl`` file per table,
each line ending with a trailing ``|``::

    1|Supplier#000000001|N kD4on9OM Ipw3,gf0JBoQDd7tgrzrddZ|17|27-918-335-1736|5755.94|each slyly above the careful|

This module reads and writes that format against the engine's schemas, so
the reproduction can exchange data with real dbgen output (load an
externally generated TPC-R dataset) and snapshot its own tables to disk.

Values are rendered by column type: ints and strings verbatim, floats with
``repr``-round-tripping precision.  The format has no escaping: a ``|`` in
a string column is rejected at export (dbgen never produces one).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro import obs
from repro.engine.database import Database
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.table import Table
from repro.engine.types import ColumnType, Schema


def dump_table(table: Table, path: str | Path) -> int:
    """Write a table's live rows as a ``.tbl`` file; returns rows written."""
    path = Path(path)
    count = 0
    with obs.trace("engine.io.dump_table", table=table.name) as span:
        with path.open("w", encoding="utf-8") as handle:
            for row in table.live_rows():
                handle.write(_render_row(row, table.schema))
                handle.write("\n")
                count += 1
        span.set(rows=count)
        obs.counter("engine.io.rows_written", count)
    return count


def load_table(
    db: Database,
    name: str,
    schema: Schema,
    path: str | Path,
) -> Table:
    """Create table ``name`` in ``db`` and populate it from a ``.tbl`` file."""
    path = Path(path)
    table = db.create_table(name, schema)
    with obs.trace("engine.io.load_table", table=name) as span:
        with path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                try:
                    table.insert(_parse_row(line, schema))
                except (SchemaError, ValueError) as exc:
                    raise ExecutionError(
                        f"{path}:{line_no}: bad row: {exc}"
                    ) from exc
        span.set(rows=table.live_count)
        obs.counter("engine.io.rows_read", table.live_count)
    return table


def dump_database(db: Database, directory: str | Path) -> dict[str, int]:
    """Dump every table of ``db`` to ``<directory>/<table>.tbl``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        name: dump_table(table, directory / f"{name}.tbl")
        for name, table in sorted(db.tables.items())
    }


def load_database(
    db: Database,
    directory: str | Path,
    schemas: dict[str, Schema],
) -> dict[str, int]:
    """Load every ``<table>.tbl`` named in ``schemas`` from ``directory``."""
    directory = Path(directory)
    counts = {}
    for name, schema in schemas.items():
        table = load_table(db, name, schema, directory / f"{name}.tbl")
        counts[name] = table.live_count
    return counts


def _render_row(row: Iterable, schema: Schema) -> str:
    parts = []
    for column, value in zip(schema.columns, row):
        if column.type is ColumnType.STR:
            if "|" in value:
                raise ExecutionError(
                    f"cannot export {value!r}: the .tbl format has no "
                    f"escaping for '|'"
                )
            parts.append(value)
        elif column.type is ColumnType.FLOAT:
            parts.append(repr(value))
        else:
            parts.append(str(value))
    return "|".join(parts) + "|"


def _parse_row(line: str, schema: Schema) -> tuple:
    if not line.endswith("|"):
        raise ValueError("missing trailing '|'")
    fields = line[:-1].split("|")
    if len(fields) != schema.width:
        raise ValueError(
            f"{len(fields)} fields, schema has {schema.width} columns"
        )
    values = []
    for column, text in zip(schema.columns, fields):
        if column.type is ColumnType.INT:
            values.append(int(text))
        elif column.type is ColumnType.FLOAT:
            values.append(float(text))
        else:
            values.append(text)
    return tuple(values)
