"""Aggregation: full evaluation and incrementally maintainable states.

The paper's experimental view is ``SELECT MIN(PS.supplycost) FROM ...``.
MIN/MAX are the interesting aggregates for incremental maintenance: an
insert can only improve the extremum (O(1)), but deleting the current
extremum forces a recomputation over the surviving values -- the "MIN is
not incrementally maintainable" case the paper's Section 5 mentions as a
source of irregularity in its measured cost curves.  We reproduce that
faithfully with a counted multiset whose recomputation cost is charged to
the cost model.

Two layers:

* :class:`AggregateState` subclasses -- incremental fold/unfold of single
  values, used both by the :class:`Aggregate` operator (full evaluation)
  and by :mod:`repro.ivm.maintenance` (delta application).
* :class:`Aggregate` -- a physical operator computing grouped or scalar
  aggregates over a child operator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator, Sequence

from repro import obs
from repro.engine.costmodel import OperationCounter
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.expr import Expression, resolve_column
from repro.engine.operators import Operator


class AggregateState(ABC):
    """Incrementally maintained state of one aggregate over one group."""

    def __init__(self, counter: OperationCounter | None = None):
        self.counter = counter

    def _charge(self, field: str, count: int = 1) -> None:
        if self.counter is not None:
            self.counter.charge(field, count)

    @abstractmethod
    def insert(self, value: Any) -> None:
        """Fold one inserted value into the state."""

    def insert_many(self, values: Sequence[Any]) -> None:
        """Fold a batch of inserted values, in order.

        Equivalent to ``for v in values: self.insert(v)`` -- same resulting
        state, same total charges.  Subclasses override to charge the
        counter once per batch (the blocked pipeline's amortization) while
        applying the per-value updates in the identical sequential order,
        so even float accumulation is bit-for-bit the same.
        """
        for value in values:
            self.insert(value)

    @abstractmethod
    def delete(self, value: Any) -> None:
        """Unfold one deleted value from the state."""

    def merge(self, other: "AggregateState") -> None:
        """Combine another partial state of the same aggregate into this one.

        The combine step of parallel partial aggregation: workers fold
        disjoint partitions of the input into private states, and the
        single-threaded merge loop combines them.  Merging charges
        **nothing** -- every folded value was already tallied by the
        worker that inserted it, and replayed at the merge point, so
        simulated costs stay identical to a serial fold.

        Order caveat: merging reassociates the fold.  COUNT/MIN/MAX are
        order-insensitive, so any partitioning is safe; SUM/AVG accumulate
        floats sequentially, so the scheduler must partition by *group*
        (each group folded by exactly one worker, in block order) for
        results to stay bit-identical to serial execution.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merge()"
        )

    def _check_mergeable(self, other: "AggregateState") -> None:
        if type(other) is not type(self):
            raise ExecutionError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )

    @abstractmethod
    def result(self) -> Any:
        """Current aggregate value (None over an empty group)."""

    @property
    @abstractmethod
    def count(self) -> int:
        """Number of values currently folded in."""

    def is_empty(self) -> bool:
        """True when no values remain in the group."""
        return self.count == 0


class CountState(AggregateState):
    """COUNT(*)-style tally."""

    def __init__(self, counter: OperationCounter | None = None):
        super().__init__(counter)
        self._count = 0

    def insert(self, value: Any) -> None:
        self._charge("agg_updates")
        self._count += 1

    def insert_many(self, values: Sequence[Any]) -> None:
        self._charge("agg_updates", len(values))
        self._count += len(values)

    def delete(self, value: Any) -> None:
        self._charge("agg_updates")
        if self._count == 0:
            raise ExecutionError("COUNT underflow: delete from empty group")
        self._count -= 1

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        self._count += other._count

    def result(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count


class SumState(AggregateState):
    """SUM with a companion count so empty groups report None."""

    def __init__(self, counter: OperationCounter | None = None):
        super().__init__(counter)
        self._sum = 0.0
        self._count = 0

    def insert(self, value: Any) -> None:
        self._charge("agg_updates")
        self._sum += value
        self._count += 1

    def insert_many(self, values: Sequence[Any]) -> None:
        self._charge("agg_updates", len(values))
        # Sequential accumulation, NOT sum(): float addition is not
        # associative, and results must match the row path bit-for-bit.
        for value in values:
            self._sum += value
        self._count += len(values)

    def delete(self, value: Any) -> None:
        self._charge("agg_updates")
        if self._count == 0:
            raise ExecutionError("SUM underflow: delete from empty group")
        self._sum -= value
        self._count -= 1

    def merge(self, other: AggregateState) -> None:
        # Reassociates float accumulation: only safe when each group is
        # folded whole by one worker (see AggregateState.merge).
        self._check_mergeable(other)
        self._sum += other._sum
        self._count += other._count

    def result(self) -> float | None:
        return self._sum if self._count else None

    @property
    def count(self) -> int:
        return self._count


class AvgState(SumState):
    """AVG = SUM / COUNT, sharing SUM's incremental bookkeeping."""

    def result(self) -> float | None:
        return self._sum / self._count if self._count else None


class _ExtremumState(AggregateState):
    """Counted multiset with a cached extremum (shared by MIN and MAX).

    Inserts are O(1).  Deleting a non-extremal value is O(1).  Deleting the
    last copy of the current extremum triggers a recomputation over the
    distinct surviving values, charged as ``sort_items`` -- the engine-level
    footprint of "MIN is not incrementally maintainable".
    """

    #: pick the new extremum from an iterable of distinct values
    _choose = staticmethod(min)
    #: True when candidate should replace current cached extremum
    @staticmethod
    def _beats(candidate: Any, current: Any) -> bool:
        raise NotImplementedError

    def __init__(self, counter: OperationCounter | None = None):
        super().__init__(counter)
        self._multiset: dict[Any, int] = {}
        self._extremum: Any = None
        self._count = 0
        self.recomputations = 0  # observable for tests/ablations

    def insert(self, value: Any) -> None:
        self._charge("agg_updates")
        self._multiset[value] = self._multiset.get(value, 0) + 1
        self._count += 1
        if self._extremum is None or self._beats(value, self._extremum):
            self._extremum = value

    def insert_many(self, values: Sequence[Any]) -> None:
        self._charge("agg_updates", len(values))
        multiset = self._multiset
        extremum = self._extremum
        for value in values:
            multiset[value] = multiset.get(value, 0) + 1
            if extremum is None or self._beats(value, extremum):
                extremum = value
        self._extremum = extremum
        self._count += len(values)

    def delete(self, value: Any) -> None:
        self._charge("agg_updates")
        have = self._multiset.get(value, 0)
        if have == 0:
            raise ExecutionError(
                f"extremum aggregate underflow: {value!r} not present"
            )
        if have == 1:
            del self._multiset[value]
        else:
            self._multiset[value] = have - 1
        self._count -= 1
        if value == self._extremum and value not in self._multiset:
            # The extremum left the multiset: recompute from survivors.
            # This is the "MIN is not incrementally maintainable" event the
            # paper blames for cost-curve irregularity -- worth a counter.
            self.recomputations += 1
            obs.counter("engine.aggregate.extremum_recomputes")
            self._charge("sort_items", max(1, len(self._multiset)))
            self._extremum = (
                self._choose(self._multiset) if self._multiset else None
            )

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        multiset = self._multiset
        for value, have in other._multiset.items():
            multiset[value] = multiset.get(value, 0) + have
        self._count += other._count
        self.recomputations += other.recomputations
        if other._extremum is not None and (
            self._extremum is None
            or self._beats(other._extremum, self._extremum)
        ):
            self._extremum = other._extremum

    def result(self) -> Any:
        return self._extremum

    @property
    def count(self) -> int:
        return self._count


class MinState(_ExtremumState):
    """Incrementally maintained MIN."""

    _choose = staticmethod(min)

    @staticmethod
    def _beats(candidate: Any, current: Any) -> bool:
        return candidate < current


class MaxState(_ExtremumState):
    """Incrementally maintained MAX."""

    _choose = staticmethod(max)

    @staticmethod
    def _beats(candidate: Any, current: Any) -> bool:
        return candidate > current


_STATE_FACTORIES = {
    "count": CountState,
    "sum": SumState,
    "avg": AvgState,
    "min": MinState,
    "max": MaxState,
}

#: Aggregates whose fold reassociates under merge (float accumulation).
#: The parallel scheduler partitions these by *group key* so every group
#: folds wholly on one partition, in block order -- results stay
#: bit-identical to serial.  Order-insensitive aggregates partition by
#: block round-robin instead, which exercises genuine cross-partition
#: :meth:`AggregateState.merge` combining.
ORDER_SENSITIVE_FUNCS = frozenset({"sum", "avg"})


def make_aggregate_state(
    func: str, counter: OperationCounter | None = None
) -> AggregateState:
    """Instantiate the state class for aggregate function ``func``."""
    try:
        factory = _STATE_FACTORIES[func.lower()]
    except KeyError:
        raise SchemaError(
            f"unknown aggregate {func!r}; have {sorted(_STATE_FACTORIES)}"
        ) from None
    return factory(counter)


def bucket_block(block, group_positions, value_block_fn) -> dict[tuple, list]:
    """Compute and bucket one block's aggregate inputs by group key.

    Returns ``{group_key: [values in row order]}``; the empty tuple keys
    the scalar (no group-by) case.  Charge-free and shared by the serial
    blocked fold and the parallel partial-aggregation workers, so both
    produce identical bucket contents in identical order.
    """
    values = value_block_fn(block)
    if not group_positions:
        return {(): values}
    key_columns = [block.column(p) for p in group_positions]
    buckets: dict[tuple, list] = {}
    for key, value in zip(zip(*key_columns), values):
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [value]
        else:
            bucket.append(value)
    return buckets


class Aggregate(Operator):
    """Grouped (or scalar) aggregation over a child operator.

    Output rows are ``group_by columns ++ (aggregate value,)``; with no
    group-by columns the output is a single row ``(aggregate value,)``
    (None over empty input, matching SQL's scalar-aggregate semantics for
    MIN/SUM and 0 for COUNT).
    """

    def __init__(
        self,
        child: Operator,
        func: str,
        value: Expression,
        group_by: Sequence[str] = (),
    ):
        self.child = child
        self.counter = child.counter
        self.func = func.lower()
        #: The uncompiled value expression.  The parallel executor ships
        #: it (not the closures, which cannot pickle) to process-backend
        #: workers, matching :attr:`Filter.predicate`.
        self.value = value
        self._value_fn = value.compile(child.layout)
        self._value_block_fn = value.compile_block(child.layout)
        self.group_by = tuple(group_by)
        self._group_positions = [
            resolve_column(name, child.layout) for name in group_by
        ]
        names = list(group_by) + [f"{self.func}"]
        self.layout = {n: i for i, n in enumerate(names)}
        if len(self.layout) != len(names):
            raise SchemaError(f"duplicate output columns in {names}")

    def __iter__(self) -> Iterator[tuple]:
        groups: dict[tuple, AggregateState] = {}
        rows_in = 0
        for row in self.child:
            rows_in += 1
            key = tuple(row[p] for p in self._group_positions)
            state = groups.get(key)
            if state is None:
                state = make_aggregate_state(self.func, self.counter)
                groups[key] = state
            state.insert(self._value_fn(row))
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("engine.aggregate.rows_in", rows_in)
            recorder.counter("engine.aggregate.groups_out", len(groups))
        if not groups and not self._group_positions:
            # Scalar aggregate over empty input.
            empty = make_aggregate_state(self.func, self.counter)
            yield (empty.result(),)
            return
        for key in sorted(groups, key=repr):
            yield key + (groups[key].result(),)

    def blocks(self, block_size: int):
        from repro.engine.block import iter_blocks

        groups: dict[tuple, AggregateState] = {}
        group_positions = self._group_positions
        value_block_fn = self._value_block_fn
        prof = self._prof
        rows_in = 0
        for block in self.child.blocks(block_size):
            rows_in += len(block)
            # Every row in the block folds into a state below, charging
            # exactly one agg_update per value via insert_many.
            if prof is not None:
                prof.add("agg_updates", len(block))
            # Bucket this block's values by group key, preserving row order
            # within each group, then fold each bucket in one bulk call.
            buckets = bucket_block(block, group_positions, value_block_fn)
            for key, bucket in buckets.items():
                state = groups.get(key)
                if state is None:
                    state = make_aggregate_state(self.func, self.counter)
                    groups[key] = state
                state.insert_many(bucket)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("engine.aggregate.rows_in", rows_in)
            recorder.counter("engine.aggregate.groups_out", len(groups))
        if not groups and not self._group_positions:
            empty = make_aggregate_state(self.func, self.counter)
            out_rows = [(empty.result(),)]
        else:
            out_rows = [
                key + (groups[key].result(),) for key in sorted(groups, key=repr)
            ]
        yield from iter_blocks(out_rows, self.layout, block_size)
