"""The database facade: tables, shared cost accounting, query execution.

:class:`Database` owns the tables and a single
:class:`~repro.engine.costmodel.OperationCounter`; every operator charges
that counter, so ``db.counter.window()`` brackets any unit of work (a
maintenance batch, a full refresh) and yields its simulated cost -- the
engine-side equivalent of the paper timing its maintenance SQL statements.

Query planning is deliberately rudimentary but honest:

* left-deep join order as declared in the :class:`~repro.engine.query.QuerySpec`;
* per join step, **index-nested-loop** when the inner table has an index
  on the join column, else **hash join** (build on the inner);
* filters are pushed down to the earliest point where their columns exist.

This mirrors what a real optimizer would do to these queries and is the
mechanism that turns physical design (which tables are indexed) into the
asymmetric delta-processing cost functions the paper exploits.
"""

from __future__ import annotations

import time
import warnings
from typing import Mapping, Sequence

from repro import obs
from repro.obs import attrib

#: Blocked-execution fill ratio below which a query is flagged: the
#: result cardinality is so far under ``block_size`` that most of each
#: block is slack (groundwork for adaptive block sizing, see ROADMAP).
LOW_FILL_THRESHOLD = 0.25
from repro.engine import parallel as parallel_mod
from repro.engine.aggregate import Aggregate
from repro.engine.block import DEFAULT_BLOCK_SIZE
from repro.engine.costmodel import CostModel, OperationCounter
from repro.engine.errors import SchemaError
from repro.engine.expr import Expression, resolve_column
from repro.engine.join import HashJoin, IndexNestedLoopJoin
from repro.engine.operators import Filter, Operator, Project, RowSource, SeqScan
from repro.engine.parallel import ParallelBlockExecutor
from repro.engine.query import QueryResult, QuerySpec
from repro.engine.table import Table
from repro.engine.types import Schema


class Database:
    """A named collection of tables sharing one cost counter.

    ``block_size`` selects the execution mode: the default runs the chunked
    :class:`~repro.engine.block.RowBlock` pipeline with that many rows per
    block; ``block_size=None`` falls back to row-at-a-time iteration.  Both
    modes produce identical results and identical simulated costs (see
    ``tests/integration/test_block_equivalence.py``); blocks are simply
    faster in wall-clock terms.

    ``workers`` adds pipeline parallelism on top of blocked execution:
    with ``workers >= 1``, eligible scan→filter→project chains fan their
    blocks out to a worker pool and merge in block order, with all cost
    charging centralized at the merge point
    (:mod:`repro.engine.parallel`) -- so simulated costs remain identical
    to serial execution.  ``workers=None`` (the default) defers to the
    process-global default: the CLI's ``--workers`` flag, else the
    ``REPRO_WORKERS`` environment variable, else serial.
    ``parallel_backend`` picks ``"thread"`` (default) or the opt-in
    ``"process"`` pool for CPU-bound expression evaluation; call
    :meth:`close` (or use the database as a context manager) to release
    pool workers deterministically.

    Both knobs are live-resizable between queries: :meth:`set_workers`
    swaps the pool (the only mutation path -- ``workers`` itself is a
    read-only property) and :meth:`set_block_size` changes the execution
    granularity, which is what the adaptive control layer
    (:mod:`repro.control`) actuates.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        block_size: int | None = DEFAULT_BLOCK_SIZE,
        workers: int | None = None,
        parallel_backend: str | None = None,
    ):
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {block_size}")
        self.counter = OperationCounter(model=cost_model or CostModel())
        self.tables: dict[str, Table] = {}
        self.block_size = block_size
        # Worker/backend resolution happens exactly once, here.  Mutating
        # REPRO_WORKERS or the process-global default afterwards does NOT
        # retroactively resize existing databases; set_workers() is the
        # one mutation path (a stale default is flagged at query time).
        self._workers = parallel_mod.resolve_workers(workers)
        self._workers_from_default = workers is None
        self.parallel_backend = parallel_mod.resolve_backend(parallel_backend)
        self._parallel: ParallelBlockExecutor | None = None
        self._low_fill_warned = False
        self._stale_workers_warned = False

    @property
    def workers(self) -> int:
        """The pool size, frozen at ``__init__`` until :meth:`set_workers`."""
        return self._workers

    @workers.setter
    def workers(self, value) -> None:
        raise AttributeError(
            "Database.workers is read-only; call set_workers(n) -- the "
            "one sanctioned live-resize path (it drains the old pool)"
        )

    def set_workers(self, workers: int) -> int:
        """Resize the parallel worker pool; returns the new size.

        The one mutation path for ``workers`` after construction: the
        current pool (if any) is closed and a pool of the new size is
        built lazily on the next eligible query, so the swap is safe
        **between** queries (do not call concurrently with an executing
        query).  ``0`` returns the database to serial execution.
        Simulated costs are unaffected at any size (charge-on-merge).
        """
        workers = int(workers)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers != self._workers:
            self.close()
            self._workers = workers
        # An explicit resize supersedes the construction-time default;
        # stop comparing against the process-global setting.
        self._workers_from_default = False
        return self._workers

    def set_block_size(self, block_size: int | None) -> int | None:
        """Change the execution block size; returns the new value.

        Safe between queries: ``block_size`` is consulted per query, so
        the next one simply runs at the new granularity (``None`` falls
        back to row-at-a-time).  Results and simulated costs are
        identical at every setting; only wall-clock and per-block slack
        change.  Resets the one-shot low-fill warning so the new size
        earns its own diagnosis.
        """
        if block_size is not None and block_size < 1:
            raise ValueError(
                f"block_size must be >= 1 or None, got {block_size}"
            )
        if block_size != self.block_size:
            self.block_size = block_size
            self._low_fill_warned = False
        return self.block_size

    def close(self) -> None:
        """Release the parallel worker pool, if one was started (idempotent)."""
        executor, self._parallel = self._parallel, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table registered under ``name``."""
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema, counter=self.counter)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table; raises :class:`SchemaError` when absent."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r}; have {sorted(self.tables)}"
            ) from None

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(
        self,
        spec: QuerySpec,
        snapshot_lsns: Mapping[str, int] | None = None,
        substitutions: Mapping[str, Sequence[tuple]] | None = None,
        profile: bool | None = None,
    ) -> QueryResult:
        """Run a query and materialize its result.

        Parameters
        ----------
        spec:
            The logical query.
        snapshot_lsns:
            Optional per-*alias* LSNs: read that table as of the given
            modification number instead of "now".  This is how incremental
            maintenance reads base tables at the state the view has
            incorporated.
        substitutions:
            Optional per-alias row lists replacing a table's contents
            entirely (rows must match the table's schema width).  This is
            how maintenance evaluates ``Q`` with a delta batch substituted
            for a base table.
        profile:
            ``True`` attaches a per-operator attribution tree to the
            result as :attr:`QueryResult.profile` (requires blocked
            execution).  ``None`` (the default) profiles only while a
            global profile sink is installed
            (:func:`repro.obs.attrib.set_profile_sink`); ``False`` never
            profiles.  Profiling changes **no** simulated charges.
        """
        snapshot_lsns = snapshot_lsns or {}
        substitutions = substitutions or {}
        prof = None
        if profile or (profile is None and attrib.sink_active()):
            if self.block_size is None:
                if profile:
                    raise ValueError(
                        "query profiling requires blocked execution "
                        "(block_size is None)"
                    )
                # Sink-driven profiling silently skips row-mode databases:
                # the per-row paths carry no attribution hooks.
            else:
                view, round_ = attrib.current_maintenance()
                prof = attrib.QueryProfile(
                    self.counter.model,
                    query=self._describe(spec),
                    view=view,
                    round=round_,
                )
        recorder = obs.get_recorder()
        if recorder is None and prof is None:
            return self._execute(spec, snapshot_lsns, substitutions)
        wall_start = time.perf_counter()
        if recorder is None:
            result = self._execute(spec, snapshot_lsns, substitutions, prof)
        else:
            sim_start = self.counter.elapsed_ms()
            with obs.trace("engine.execute", base=spec.base_table) as span:
                result = self._execute(
                    spec, snapshot_lsns, substitutions, prof
                )
                span.set(rows_out=len(result.rows))
            recorder.counter("engine.queries")
            recorder.counter("engine.rows_out", len(result.rows))
            recorder.observe(
                "engine.execute.sim_ms", self.counter.elapsed_ms() - sim_start
            )
        if prof is not None:
            prof.finish(
                rows_out=len(result.rows),
                wall_ms=(time.perf_counter() - wall_start) * 1e3,
            )
            result.profile = prof
            attrib.emit(prof)
        return result

    @staticmethod
    def _describe(spec: QuerySpec) -> str:
        """A short human label for a query (profile headers)."""
        label = spec.base_table
        for join in spec.joins:
            label += f" ⋈ {join.table}"
        if spec.aggregate is not None:
            label += f" → {spec.aggregate.func.upper()}"
        return label

    def _execute(
        self,
        spec: QuerySpec,
        snapshot_lsns: Mapping[str, int],
        substitutions: Mapping[str, Sequence[tuple]],
        prof: "attrib.QueryProfile | None" = None,
    ) -> QueryResult:
        if prof is None:
            return self._execute_plan(spec, snapshot_lsns, substitutions, None)
        with attrib.capturing(prof):
            return self._execute_plan(spec, snapshot_lsns, substitutions, prof)

    def _execute_plan(
        self,
        spec: QuerySpec,
        snapshot_lsns: Mapping[str, int],
        substitutions: Mapping[str, Sequence[tuple]],
        prof: "attrib.QueryProfile | None",
    ) -> QueryResult:
        self.counter.charge("startups")
        if prof is not None:
            prof.root.add("startups", 1)

        plan = self._source(spec, spec.base_alias, spec.base_table,
                            snapshot_lsns, substitutions)
        pending_filters = list(spec.filters)
        plan = self._apply_ready_filters(plan, pending_filters)

        for join in spec.joins:
            inner_table = self.table(join.table)
            substituted = join.alias in substitutions
            if substituted:
                right = RowSource(
                    substitutions[join.alias],
                    inner_table.schema.names,
                    join.alias,
                    self.counter,
                )
                plan = HashJoin(
                    plan, right, join.left_column,
                    f"{join.alias}.{join.right_column}",
                    block_size=self.block_size,
                )
            else:
                snapshot = inner_table.snapshot(snapshot_lsns.get(join.alias))
                if snapshot.has_index(join.right_column):
                    plan = IndexNestedLoopJoin(
                        plan, snapshot, join.alias,
                        join.left_column, join.right_column,
                    )
                else:
                    right = SeqScan(snapshot, join.alias, self.counter)
                    plan = HashJoin(
                        plan, right, join.left_column,
                        f"{join.alias}.{join.right_column}",
                        block_size=self.block_size,
                    )
            plan = self._apply_ready_filters(plan, pending_filters)

        if pending_filters:
            unresolved = [repr(f) for f in pending_filters]
            raise SchemaError(f"filters reference unknown columns: {unresolved}")

        if spec.aggregate is not None:
            agg = spec.aggregate
            plan = Aggregate(plan, agg.func, agg.value, agg.group_by)
        elif spec.projection is not None:
            plan = Project(plan, spec.projection)

        if prof is not None:
            attrib.attach_to_plan(plan, prof)

        columns = tuple(
            sorted(plan.layout, key=plan.layout.__getitem__)
        )
        rows = self._pull(plan)
        if spec.distinct:
            # Order-preserving dedup; one hash operation per input row.
            self.counter.charge("hash_probes", len(rows))
            if prof is not None:
                prof.root.add("hash_probes", len(rows))
            rows = list(dict.fromkeys(rows))
        if spec.order_by:
            rows = self._apply_order(rows, spec.order_by, plan.layout)
        if spec.limit is not None:
            rows = rows[: spec.limit]
        return QueryResult(rows=rows, columns=columns)

    def _parallel_executor(self) -> ParallelBlockExecutor:
        if self._parallel is None:
            self._parallel = ParallelBlockExecutor(
                self.workers, backend=self.parallel_backend
            )
        return self._parallel

    def _pull(self, plan: Operator) -> list[tuple]:
        """Drain a plan's output, blocked or row-at-a-time per config.

        With ``workers >= 1`` and a parallelizable plan (a
        scan→filter→project chain, optionally through hash-join probes
        and a terminal aggregate), blocks are evaluated on the worker
        pool and merged here in block order; every other plan shape uses
        the serial blocked pipeline.  Both paths charge identical costs.
        A chain that decomposes but cannot run on the configured backend
        falls back to serial, counted by ``engine.parallel.fallback``
        (never silently).
        """
        if self.block_size is None:
            return plan.rows()
        if self._workers_from_default and not self._stale_workers_warned:
            # Resolution is frozen at __init__; if the process-global
            # default (REPRO_WORKERS / set_default_workers) has moved
            # since, say so once instead of silently no-opping.
            try:
                current_default = parallel_mod.resolve_workers(None)
            except ValueError:
                current_default = self._workers  # unparseable env: ignore
            if current_default != self._workers:
                self._stale_workers_warned = True
                warnings.warn(
                    f"the process-global worker default changed to "
                    f"{current_default} after this Database resolved "
                    f"workers={self._workers} at construction; existing "
                    f"databases are never resized implicitly -- call "
                    f"set_workers({current_default}) to adopt it",
                    RuntimeWarning,
                    stacklevel=3,
                )
        blocks = None
        if self.workers >= 1:
            chain = parallel_mod.decompose_chain(plan)
            if chain is not None:
                try:
                    blocks = self._parallel_executor().execute(
                        chain, self.block_size, self.counter
                    )
                except parallel_mod.ParallelUnsupported as exc:
                    # Tag the fallback with why: each reason gets its own
                    # dotted counter so the summary table (and /metrics)
                    # breaks fallbacks down by cause.
                    obs.counter("engine.parallel.fallback")
                    obs.counter(f"engine.parallel.fallback.{exc.reason}")
        if blocks is None:
            blocks = plan.blocks(self.block_size)
        rows: list[tuple] = []
        n_blocks = 0
        last_len = 0
        for block in blocks:
            n_blocks += 1
            last_len = len(block)
            rows.extend(block.rows())
        fill = len(rows) / (n_blocks * self.block_size) if n_blocks else None
        # Low-fill accounting excludes the natural tail: almost every
        # result ends in one partial block, so counting it would flag
        # every short query.  Only fill observed over the *preceding*
        # blocks (mid-stream slack, e.g. from selective filters) is a
        # signal that block_size is oversized for the workload.
        if n_blocks and last_len < self.block_size:
            accounted_blocks = n_blocks - 1
            accounted_rows = len(rows) - last_len
        else:
            accounted_blocks, accounted_rows = n_blocks, len(rows)
        accounted_fill = (
            accounted_rows / (accounted_blocks * self.block_size)
            if accounted_blocks
            else None
        )
        low_fill = (
            accounted_fill is not None and accounted_fill < LOW_FILL_THRESHOLD
        )
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("engine.block.blocks", n_blocks)
            recorder.counter("engine.block.rows_out", len(rows))
            if fill is not None:
                recorder.observe("engine.block.fill", fill)
            if low_fill:
                recorder.counter("engine.block.low_fill")
        if low_fill and not self._low_fill_warned:
            # Once per Database: repeated queries with the same shape
            # would otherwise flood stderr with identical advice.
            self._low_fill_warned = True
            warnings.warn(
                f"blocked execution fill {accounted_fill:.1%} is below "
                f"{LOW_FILL_THRESHOLD:.0%} (block_size={self.block_size}, "
                f"{accounted_rows} rows over {accounted_blocks} non-tail "
                f"block(s)); a smaller block_size would waste less "
                f"per-block slack",
                RuntimeWarning,
                stacklevel=3,
            )
        return rows

    def _apply_order(self, rows, order_by, layout):
        """Sort the final rows by the ORDER BY keys (stable, last key
        applied first), charging one sort item per row per key."""
        prof = attrib.active_profile()
        for order in reversed(order_by):
            pos = resolve_column(order.column, layout)
            self.counter.charge("sort_items", len(rows))
            if prof is not None:
                prof.root.add("sort_items", len(rows))
            rows = sorted(
                rows, key=lambda row: row[pos], reverse=order.descending
            )
        return rows

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------

    def explain(
        self,
        spec: QuerySpec,
        substitutions: Mapping[str, Sequence[tuple]] | None = None,
        analyze: bool = False,
        snapshot_lsns: Mapping[str, int] | None = None,
    ) -> str:
        """A textual description of the physical plan ``execute`` would run.

        Mirrors the planner's decisions (access paths, join algorithms,
        filter placement) without executing anything -- in particular
        without paying hash-join build costs.

        With ``analyze=True`` the query is **executed** (charging the
        counter exactly as a plain ``execute`` would) and the rendered
        tree carries per-operator actuals: rows and blocks out, wall
        time, attributed simulated charges, and -- under parallel
        execution -- the per-worker busy-time spread at the merge.
        """
        if analyze:
            result = self.execute(
                spec,
                snapshot_lsns=snapshot_lsns,
                substitutions=substitutions,
                profile=True,
            )
            return attrib.render_profile(result.profile)
        substitutions = substitutions or {}
        lines: list[str] = []
        indent = 0

        def emit(text: str) -> None:
            lines.append("  " * indent + text)

        pending = list(spec.filters)

        def emit_ready_filters(layout: dict[str, int]) -> None:
            nonlocal pending
            still = []
            for predicate in pending:
                if self._resolvable(predicate, layout):
                    emit(f"Filter: {predicate!r}")
                else:
                    still.append(predicate)
            pending = still

        base_table = self.table(spec.base_table)
        layout = {
            f"{spec.base_alias}.{name}": i
            for i, name in enumerate(base_table.schema.names)
        }
        if spec.base_alias in substitutions:
            emit(
                f"RowSource({spec.base_alias} := delta of "
                f"{spec.base_table}, {len(substitutions[spec.base_alias])} rows)"
            )
        else:
            emit(
                f"SeqScan({spec.base_table} AS {spec.base_alias}, "
                f"~{base_table.live_count} rows)"
            )
        emit_ready_filters(layout)

        for join in spec.joins:
            inner = self.table(join.table)
            inner_layout = {
                f"{join.alias}.{name}": i
                for i, name in enumerate(inner.schema.names)
            }
            width = len(layout)
            layout.update(
                {name: width + pos for name, pos in inner_layout.items()}
            )
            indent += 1
            if join.alias in substitutions:
                emit(
                    f"HashJoin(build delta {join.alias}, "
                    f"{len(substitutions[join.alias])} rows) ON "
                    f"{join.left_column} = {join.alias}.{join.right_column}"
                )
            elif inner.index_on(join.right_column) is not None:
                emit(
                    f"IndexNestedLoopJoin({join.table} AS {join.alias} via "
                    f"index on {join.right_column}) ON "
                    f"{join.left_column} = {join.alias}.{join.right_column}"
                )
            else:
                emit(
                    f"HashJoin(build SeqScan({join.table} AS {join.alias}, "
                    f"~{inner.live_count} rows)) ON "
                    f"{join.left_column} = {join.alias}.{join.right_column}"
                )
            emit_ready_filters(layout)

        indent += 1
        if spec.aggregate is not None:
            group = (
                f" GROUP BY {', '.join(spec.aggregate.group_by)}"
                if spec.aggregate.group_by
                else ""
            )
            emit(
                f"Aggregate({spec.aggregate.func.upper()}"
                f"({spec.aggregate.value!r})){group}"
            )
        elif spec.projection is not None:
            emit(f"Project({', '.join(spec.projection)})")
        for order in spec.order_by:
            emit(
                f"Sort({order.column} "
                f"{'DESC' if order.descending else 'ASC'})"
            )
        if spec.limit is not None:
            emit(f"Limit({spec.limit})")
        if pending:
            emit(f"!! unresolved filters: {[repr(f) for f in pending]}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Planner internals
    # ------------------------------------------------------------------

    def _source(
        self,
        spec: QuerySpec,
        alias: str,
        table_name: str,
        snapshot_lsns: Mapping[str, int],
        substitutions: Mapping[str, Sequence[tuple]],
    ) -> Operator:
        table = self.table(table_name)
        if alias in substitutions:
            return RowSource(
                substitutions[alias], table.schema.names, alias, self.counter
            )
        snapshot = table.snapshot(snapshot_lsns.get(alias))
        return SeqScan(snapshot, alias, self.counter)

    def _apply_ready_filters(
        self, plan: Operator, pending: list[Expression]
    ) -> Operator:
        """Push down every pending filter whose columns are now available."""
        still_pending = []
        for predicate in pending:
            if self._resolvable(predicate, plan.layout):
                plan = Filter(plan, predicate)
            else:
                still_pending.append(predicate)
        pending[:] = still_pending
        return plan

    @staticmethod
    def _resolvable(predicate: Expression, layout: Mapping[str, int]) -> bool:
        try:
            for name in predicate.references():
                resolve_column(name, layout)
        except SchemaError:
            return False
        return True

    def __repr__(self) -> str:
        return f"Database(tables={sorted(self.tables)})"
