"""Physical operators: scans, filters, projections.

Operators follow a simple pull model with two equivalent surfaces: each
exposes ``layout`` (a mapping from qualified column name to position in
the tuples it produces) and is iterable row-at-a-time, and each also
implements :meth:`Operator.blocks` -- the chunked pipeline that moves
:class:`~repro.engine.block.RowBlock` batches instead of single tuples.
Both surfaces produce the same rows in the same order and charge the
shared :class:`~repro.engine.costmodel.OperationCounter` the **same
totals**; the blocked path simply charges per block instead of per row,
which is where its wall-clock advantage comes from (the simulated cost is
the experiment observable and must not move).

Joins and aggregation live in their own modules
(:mod:`repro.engine.join`, :mod:`repro.engine.aggregate`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro import obs
from repro.engine.block import RowBlock, iter_blocks
from repro.engine.costmodel import ROWS_PER_PAGE, OperationCounter
from repro.engine.errors import SchemaError
from repro.engine.expr import Expression, resolve_column
from repro.engine.snapshot import Snapshot


class Operator:
    """Base class: an iterable of row tuples with a named layout."""

    layout: Mapping[str, int]
    counter: OperationCounter
    #: Attribution node (:class:`repro.obs.attrib.ProfileNode`) set by
    #: ``attrib.attach_to_plan`` when the query is profiled; None (one
    #: attribute check per charge site) otherwise.  Attribution mirrors
    #: charges already made against ``counter`` -- it never adds any.
    _prof = None

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError

    def rows(self) -> list[tuple]:
        """Materialize the operator's full output."""
        return list(self)

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        """Produce the same output as ``__iter__``, chunked into blocks.

        The fallback wraps the row iterator, so any operator subclass is
        block-capable (with row-granular charging); the engine's own
        operators override it with genuinely chunked implementations that
        charge the counter in bulk.
        """
        rows: list[tuple] = []
        for row in self:
            rows.append(row)
            if len(rows) >= block_size:
                yield RowBlock.from_rows(rows, self.layout)
                rows = []
        if rows:
            yield RowBlock.from_rows(rows, self.layout)


class SeqScan(Operator):
    """Full scan of a snapshot, tagging columns with an alias.

    Charges one page read per :data:`~repro.engine.costmodel.ROWS_PER_PAGE`
    visible rows plus per-tuple CPU -- the 'no index, read everything'
    access path whose cost is what makes un-indexed delta processing
    expensive in the paper's Figure 1.
    """

    def __init__(self, snapshot: Snapshot, alias: str, counter: OperationCounter):
        self.snapshot = snapshot
        self.alias = alias
        self.counter = counter
        self.layout = {
            f"{alias}.{name}": pos
            for pos, name in enumerate(snapshot.schema.names)
        }

    def _charge_scan_setup(self) -> int:
        rows = self.snapshot.count()
        self.counter.charge_pages(rows)
        if self._prof is not None and rows:
            self._prof.add("page_reads", -(-rows // ROWS_PER_PAGE))
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("engine.scan.scans")
            recorder.counter("engine.scan.rows_out", rows)
            recorder.counter(
                "engine.scan.pages", -(-rows // ROWS_PER_PAGE) if rows else 0
            )
        return rows

    def __iter__(self) -> Iterator[tuple]:
        self._charge_scan_setup()
        for row in self.snapshot.rows():
            self.counter.charge("tuple_cpu")
            yield row

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        self._charge_scan_setup()
        charge = self.counter.charge
        prof = self._prof
        for block in iter_blocks(self.snapshot.row_list(), self.layout, block_size):
            charge("tuple_cpu", len(block))
            if prof is not None:
                prof.add("tuple_cpu", len(block))
            yield block


class PrescannedRows(list):
    """Delta rows whose scan CPU was already charged once, upstream.

    The shared-scan coordinator (:mod:`repro.ivm.sharedscan`) splits a
    table's delta window into row batches exactly once per maintenance
    round, charging ``tuple_cpu`` for the split at that point.  Wrapping
    the rows in this marker tells :class:`RowSource` -- and the parallel
    executor's merge -- that the source-stage CPU is prepaid, so fanning
    the same batch to N subscribing views charges the scan once, not N
    times.  Behaves as a plain (read-only by convention) list everywhere
    else.
    """

    __slots__ = ()


class RowSource(Operator):
    """An in-memory relation (e.g. a delta batch) presented as an operator.

    No page reads are charged: delta rows arrive already in memory, exactly
    like the delta tables the paper appends modifications to.  A
    :class:`PrescannedRows` batch additionally skips the per-row
    ``tuple_cpu`` scan charge -- it was charged once by the shared scan
    that produced the batch.
    """

    def __init__(
        self,
        rows: Sequence[tuple],
        names: Sequence[str],
        alias: str,
        counter: OperationCounter,
    ):
        self.precharged = isinstance(rows, PrescannedRows)
        self._rows = rows if self.precharged else list(rows)
        self.alias = alias
        self.counter = counter
        self.layout = {f"{alias}.{n}": i for i, n in enumerate(names)}
        if len(self.layout) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        width = len(names)
        for i, row in enumerate(self._rows):
            if len(row) != width:
                raise SchemaError(
                    f"substituted row {i} for {alias!r} has {len(row)} "
                    f"values, expected {width}"
                )

    def __iter__(self) -> Iterator[tuple]:
        if self.precharged:
            yield from self._rows
            return
        for row in self._rows:
            self.counter.charge("tuple_cpu")
            yield row

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        if self.precharged:
            # Scan CPU prepaid by the shared delta scan; the profile hook
            # mirrors charges only, so it stays silent too.
            yield from iter_blocks(self._rows, self.layout, block_size)
            return
        charge = self.counter.charge
        prof = self._prof
        for block in iter_blocks(self._rows, self.layout, block_size):
            charge("tuple_cpu", len(block))
            if prof is not None:
                prof.add("tuple_cpu", len(block))
            yield block

    def __len__(self) -> int:
        return len(self._rows)


class Filter(Operator):
    """Select rows satisfying a compiled predicate."""

    def __init__(self, child: Operator, predicate: Expression):
        self.child = child
        self.counter = child.counter
        self.layout = child.layout
        #: The uncompiled predicate tree.  The parallel executor ships it
        #: (not the closures below, which cannot pickle) to process-backend
        #: workers, which compile it against the same layout.
        self.predicate = predicate
        self._fn = predicate.compile(child.layout)
        self._block_fn = predicate.compile_block(child.layout)

    def __iter__(self) -> Iterator[tuple]:
        for row in self.child:
            self.counter.charge("compares")
            if self._fn(row):
                yield row

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        block_fn = self._block_fn
        charge = self.counter.charge
        prof = self._prof
        for block in self.child.blocks(block_size):
            charge("compares", len(block))
            if prof is not None:
                prof.add("compares", len(block))
            flags = block_fn(block)
            if all(flags):
                yield block  # nothing filtered: pass through zero-copy
                continue
            keep = [i for i, flag in enumerate(flags) if flag]
            if keep:
                yield block.take(keep)


class Project(Operator):
    """Keep (and reorder) a subset of columns."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        self.child = child
        self.counter = child.counter
        self.columns = tuple(columns)
        positions = [resolve_column(name, child.layout) for name in columns]
        self._positions = positions
        self.layout = {name: i for i, name in enumerate(columns)}
        if len(self.layout) != len(columns):
            raise SchemaError(f"duplicate projection columns in {columns}")

    def __iter__(self) -> Iterator[tuple]:
        positions = self._positions
        for row in self.child:
            self.counter.charge("tuple_cpu")
            yield tuple(row[p] for p in positions)

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        positions = self._positions
        charge = self.counter.charge
        prof = self._prof
        for block in self.child.blocks(block_size):
            charge("tuple_cpu", len(block))
            if prof is not None:
                prof.add("tuple_cpu", len(block))
            yield RowBlock.from_columns(
                [block.column(p) for p in positions],
                self.layout,
                length=len(block),
            )


def merged_layout(
    left: Mapping[str, int], right: Mapping[str, int]
) -> dict[str, int]:
    """Layout of a concatenated (left ++ right) row."""
    overlap = set(left) & set(right)
    if overlap:
        raise SchemaError(f"join sides share qualified columns {sorted(overlap)}")
    width = len(left)
    out = dict(left)
    for name, pos in right.items():
        out[name] = width + pos
    return out


def materialize(source: Iterable[tuple]) -> list[tuple]:
    """Pull an operator (or any iterable) fully into a list."""
    return list(source)
