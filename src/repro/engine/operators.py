"""Physical operators: scans, filters, projections.

Operators follow a simple pull model: each exposes ``layout`` (a mapping
from qualified column name to position in the tuples it produces) and is
iterable.  Every operator charges its work to the shared
:class:`~repro.engine.costmodel.OperationCounter`, which is how experiments
observe maintenance cost.

Joins and aggregation live in their own modules
(:mod:`repro.engine.join`, :mod:`repro.engine.aggregate`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro import obs
from repro.engine.costmodel import ROWS_PER_PAGE, OperationCounter
from repro.engine.errors import SchemaError
from repro.engine.expr import Expression, resolve_column
from repro.engine.snapshot import Snapshot


class Operator:
    """Base class: an iterable of row tuples with a named layout."""

    layout: Mapping[str, int]
    counter: OperationCounter

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError

    def rows(self) -> list[tuple]:
        """Materialize the operator's full output."""
        return list(self)


class SeqScan(Operator):
    """Full scan of a snapshot, tagging columns with an alias.

    Charges one page read per :data:`~repro.engine.costmodel.ROWS_PER_PAGE`
    visible rows plus per-tuple CPU -- the 'no index, read everything'
    access path whose cost is what makes un-indexed delta processing
    expensive in the paper's Figure 1.
    """

    def __init__(self, snapshot: Snapshot, alias: str, counter: OperationCounter):
        self.snapshot = snapshot
        self.alias = alias
        self.counter = counter
        self.layout = {
            f"{alias}.{name}": pos
            for pos, name in enumerate(snapshot.schema.names)
        }

    def __iter__(self) -> Iterator[tuple]:
        rows = self.snapshot.count()
        self.counter.charge_pages(rows)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counter("engine.scan.scans")
            recorder.counter("engine.scan.rows_out", rows)
            recorder.counter(
                "engine.scan.pages", -(-rows // ROWS_PER_PAGE) if rows else 0
            )
        for row in self.snapshot.rows():
            self.counter.charge("tuple_cpu")
            yield row


class RowSource(Operator):
    """An in-memory relation (e.g. a delta batch) presented as an operator.

    No page reads are charged: delta rows arrive already in memory, exactly
    like the delta tables the paper appends modifications to.
    """

    def __init__(
        self,
        rows: Sequence[tuple],
        names: Sequence[str],
        alias: str,
        counter: OperationCounter,
    ):
        self._rows = list(rows)
        self.alias = alias
        self.counter = counter
        self.layout = {f"{alias}.{n}": i for i, n in enumerate(names)}
        if len(self.layout) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        width = len(names)
        for i, row in enumerate(self._rows):
            if len(row) != width:
                raise SchemaError(
                    f"substituted row {i} for {alias!r} has {len(row)} "
                    f"values, expected {width}"
                )

    def __iter__(self) -> Iterator[tuple]:
        for row in self._rows:
            self.counter.charge("tuple_cpu")
            yield row

    def __len__(self) -> int:
        return len(self._rows)


class Filter(Operator):
    """Select rows satisfying a compiled predicate."""

    def __init__(self, child: Operator, predicate: Expression):
        self.child = child
        self.counter = child.counter
        self.layout = child.layout
        self._fn = predicate.compile(child.layout)

    def __iter__(self) -> Iterator[tuple]:
        for row in self.child:
            self.counter.charge("compares")
            if self._fn(row):
                yield row


class Project(Operator):
    """Keep (and reorder) a subset of columns."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        self.child = child
        self.counter = child.counter
        positions = [resolve_column(name, child.layout) for name in columns]
        self._positions = positions
        self.layout = {name: i for i, name in enumerate(columns)}
        if len(self.layout) != len(columns):
            raise SchemaError(f"duplicate projection columns in {columns}")

    def __iter__(self) -> Iterator[tuple]:
        positions = self._positions
        for row in self.child:
            self.counter.charge("tuple_cpu")
            yield tuple(row[p] for p in positions)


def merged_layout(
    left: Mapping[str, int], right: Mapping[str, int]
) -> dict[str, int]:
    """Layout of a concatenated (left ++ right) row."""
    overlap = set(left) & set(right)
    if overlap:
        raise SchemaError(f"join sides share qualified columns {sorted(overlap)}")
    width = len(left)
    out = dict(left)
    for name, pos in right.items():
        out[name] = width + pos
    return out


def materialize(source: Iterable[tuple]) -> list[tuple]:
    """Pull an operator (or any iterable) fully into a list."""
    return list(source)
