"""Engine exception hierarchy.

All engine errors derive from :class:`EngineError` so callers can catch the
whole family; the subclasses distinguish definition-time problems
(:class:`SchemaError`) from run-time execution problems
(:class:`ExecutionError`).
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all relational-engine errors."""


class SchemaError(EngineError):
    """A table, column, index, or query definition is malformed."""


class ExecutionError(EngineError):
    """A query or modification failed at execution time."""
