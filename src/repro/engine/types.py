"""Column types and table schemas.

The engine is dynamically typed at storage level (rows are plain tuples)
but schemas validate values on insert and give every physical operator the
column-name-to-position mapping it needs.  Three SQL-ish types cover the
TPC-R subset: integers (keys, quantities, money-as-cents), floats
(supplycost and other decimals), and strings (names, comments).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    def validate(self, value: Any) -> Any:
        """Coerce-and-check ``value`` for this type; raise on mismatch.

        Ints are accepted for FLOAT columns (SQL numeric widening); bools
        are rejected for INT columns (a classic Python pitfall, since
        ``bool`` subclasses ``int``).
        """
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SchemaError(f"expected str, got {value!r}")
        return value


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


class Schema:
    """An ordered collection of uniquely named columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.columns: tuple[Column, ...] = tuple(columns)
        self._positions = {c.name: i for i, c in enumerate(columns)}

    @classmethod
    def of(cls, **specs: ColumnType) -> "Schema":
        """Shorthand: ``Schema.of(suppkey=ColumnType.INT, name=ColumnType.STR)``."""
        return cls([Column(n, t) for n, t in specs.items()])

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def width(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def position(self, name: str) -> int:
        """Index of column ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {list(self._positions)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def validate_row(self, values: Sequence[Any]) -> tuple:
        """Type-check one row and return it as a canonical tuple."""
        if len(values) != self.width:
            raise SchemaError(
                f"row has {len(values)} values, schema has {self.width} columns"
            )
        return tuple(
            c.type.validate(v) for c, v in zip(self.columns, values)
        )

    def row_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Present a stored row as a name->value mapping (for display/tests)."""
        return dict(zip(self.names, row))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.type.value}" for c in self.columns)
        return f"Schema({cols})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)
