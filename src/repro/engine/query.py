"""Logical query descriptions (select-project-join plus one aggregate).

A :class:`QuerySpec` captures the class of queries the paper maintains:
left-deep equi-join chains with conjunctive filters, optional projection,
and an optional aggregate -- e.g. the TPC-R experiment view::

    SELECT MIN(PS.supplycost)
    FROM PartSupp PS, Supplier S, Nation N, Region R
    WHERE S.suppkey = PS.suppkey AND S.nationkey = N.nationkey
      AND N.regionkey = R.regionkey AND R.name = 'MIDDLE EAST'

becomes::

    QuerySpec(
        base_alias="PS", base_table="partsupp",
        joins=(
            JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        filters=(col("R.name") == lit("MIDDLE EAST"),),
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )

The join order is the declaration order (left-deep); the physical join
algorithm per step is chosen by :class:`~repro.engine.database.Database`
from available indexes -- the asymmetry knob of the whole reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.errors import SchemaError
from repro.engine.expr import Expression


@dataclass(frozen=True)
class JoinSpec:
    """One step of a left-deep equi-join chain.

    ``left_column`` is a qualified column of the already-joined prefix;
    ``right_column`` is a bare column of the table being joined in.
    """

    alias: str
    table: str
    left_column: str
    right_column: str

    def __post_init__(self) -> None:
        if "." in self.right_column:
            raise SchemaError(
                f"right_column must be a bare column name, got "
                f"{self.right_column!r}"
            )


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate over the join result: ``func(value) GROUP BY group_by``."""

    func: str
    value: Expression
    group_by: tuple[str, ...] = ()


@dataclass(frozen=True)
class OrderSpec:
    """One ORDER BY key: a column of the *final output* and a direction.

    Ordering is applied after projection/aggregation, so the key must name
    a projected column (or a group-by / aggregate output column); ordering
    by a column the projection drops is a :class:`SchemaError`.
    """

    column: str
    descending: bool = False


@dataclass(frozen=True)
class QuerySpec:
    """A select-project-join(-aggregate) query, with optional ordering."""

    base_alias: str
    base_table: str
    joins: tuple[JoinSpec, ...] = ()
    filters: tuple[Expression, ...] = ()
    projection: tuple[str, ...] | None = None
    aggregate: AggregateSpec | None = None
    order_by: tuple[OrderSpec, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        aliases = [self.base_alias] + [j.alias for j in self.joins]
        if len(set(aliases)) != len(aliases):
            raise SchemaError(f"duplicate aliases in query: {aliases}")
        if self.projection is not None and self.aggregate is not None:
            raise SchemaError("use aggregate.group_by instead of projection")
        if self.limit is not None and self.limit < 0:
            raise SchemaError(f"LIMIT must be non-negative, got {self.limit}")

    @property
    def aliases(self) -> tuple[str, ...]:
        """All table aliases, base first, in join order."""
        return (self.base_alias,) + tuple(j.alias for j in self.joins)

    def table_of(self, alias: str) -> str:
        """Table name bound to ``alias``."""
        if alias == self.base_alias:
            return self.base_table
        for j in self.joins:
            if j.alias == alias:
                return j.table
        raise SchemaError(f"unknown alias {alias!r} in query")

    def rebased(self, new_base_alias: str) -> "QuerySpec":
        """The same query re-rooted so ``new_base_alias`` drives the join.

        Incremental maintenance computes ``Q`` with a delta substituted for
        one base table; making that table the outer (driving) relation lets
        small delta batches exploit indexes on the inner tables.  The chain
        is re-derived by walking join predicates outward from the new base
        (the join graph of an equi-join chain is a tree, so a unique
        re-rooting exists).
        """
        if new_base_alias == self.base_alias:
            return self
        # Build the undirected join graph: edges annotated with the
        # qualified equi-join columns.
        edges: dict[str, list[tuple[str, str, str]]] = {a: [] for a in self.aliases}
        for j in self.joins:
            left_alias = j.left_column.split(".")[0]
            edges[left_alias].append(
                (j.alias, j.left_column, f"{j.alias}.{j.right_column}")
            )
            edges[j.alias].append(
                (left_alias, f"{j.alias}.{j.right_column}", j.left_column)
            )
        if new_base_alias not in edges:
            raise SchemaError(f"unknown alias {new_base_alias!r} in query")
        # BFS from the new base, emitting JoinSpecs in discovery order.
        order: list[str] = [new_base_alias]
        new_joins: list[JoinSpec] = []
        seen = {new_base_alias}
        frontier = [new_base_alias]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for neighbor, near_col, far_col in edges[node]:
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    order.append(neighbor)
                    nxt.append(neighbor)
                    new_joins.append(
                        JoinSpec(
                            alias=neighbor,
                            table=self.table_of(neighbor),
                            left_column=near_col,
                            right_column=far_col.split(".")[1],
                        )
                    )
            frontier = nxt
        if len(order) != len(self.aliases):
            raise SchemaError(
                f"join graph is disconnected; cannot rebase to "
                f"{new_base_alias!r}"
            )
        return QuerySpec(
            base_alias=new_base_alias,
            base_table=self.table_of(new_base_alias),
            joins=tuple(new_joins),
            filters=self.filters,
            projection=self.projection,
            aggregate=self.aggregate,
            order_by=self.order_by,
            limit=self.limit,
            distinct=self.distinct,
        )


@dataclass
class QueryResult:
    """Materialized query output: rows plus their column names."""

    rows: list[tuple]
    columns: tuple[str, ...]
    #: Per-operator attribution tree (:class:`repro.obs.attrib.QueryProfile`)
    #: when the query ran with ``profile=True`` / an active profile sink;
    #: None otherwise.
    profile: "object | None" = None

    def scalar(self):
        """The single value of a one-row one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SchemaError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)
