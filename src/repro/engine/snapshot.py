"""Point-in-time reads over versioned tables.

A :class:`Snapshot` is a lightweight view of a table *as of* a particular
LSN.  It does not copy data; it filters row versions by visibility.  All
physical operators read through snapshots, which is what lets incremental
view maintenance join a delta batch against base tables at exactly the
state the view has incorporated (see :mod:`repro.engine.table` for why).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterator

if TYPE_CHECKING:  # circular import guard; Table imports Snapshot
    from repro.engine.table import Table


class Snapshot:
    """A read-only view of ``table`` at modification LSN ``lsn``."""

    def __init__(self, table: "Table", lsn: int):
        self.table = table
        self.lsn = lsn
        self._count: int | None = None
        self._visible: list[tuple] | None = None
        self._lookup_cache: dict[tuple, list[tuple]] = {}

    @property
    def schema(self):
        """The underlying table's schema."""
        return self.table.schema

    @property
    def name(self) -> str:
        """The underlying table's name."""
        return self.table.name

    def rows(self) -> Iterator[tuple]:
        """Iterate rows visible at this snapshot (no cost charged here;
        operators charge scans)."""
        return iter(self.row_list())

    def row_list(self) -> list[tuple]:
        """All visible rows, materialized once and cached.

        The visibility predicate at a fixed LSN is immutable even as the
        table keeps mutating (later inserts have ``xmin > lsn``; later
        deletes set ``xmax > lsn``, leaving visibility here unchanged), so
        one pass over the versions serves every reader of this snapshot.
        This is the per-block amortization of the chunked pipeline: a scan
        checks visibility once per version total, not once per version per
        downstream pull.  Callers must not mutate the returned list.
        """
        if self._visible is None:
            lsn = self.lsn
            self._visible = [
                v.values
                for v in self.table._versions
                if v.xmin <= lsn and (v.xmax is None or v.xmax > lsn)
            ]
            self._count = len(self._visible)
        return self._visible

    def count(self) -> int:
        """Number of visible rows (computed once, then cached)."""
        if self._count is None:
            self.row_list()
        return self._count

    def lookup(self, column: str, key: Hashable) -> list[tuple]:
        """Visible rows with ``column == key`` via an index, if one exists.

        Raises ``LookupError`` if no index covers ``column``; operators use
        :meth:`has_index` to decide between index and scan access paths.
        """
        cached = self._lookup_cache.get((column, key))
        if cached is not None:
            return cached
        index = self.table.index_on(column)
        if index is None:
            raise LookupError(f"no index on {self.name}.{column}")
        out = []
        for rid in index.lookup(key):
            version = self.table.version(rid)
            if version.visible_at(self.lsn):
                out.append(version.values)
        # Visibility at a fixed LSN never changes, so the probe result is a
        # pure function of (column, key) -- cache it for repeated join keys.
        # Callers must not mutate the returned list.
        self._lookup_cache[(column, key)] = out
        return out

    def has_index(self, column: str) -> bool:
        """Whether an index-assisted lookup on ``column`` is available.

        Indexes are version-aware (dead versions stay indexed and are
        filtered by visibility), so index access works at any snapshot LSN.
        """
        return self.table.index_on(column) is not None

    def column_position(self, column: str) -> int:
        """Position of ``column`` in stored rows."""
        return self.schema.position(column)

    def column_values(self, column: str) -> Iterator[Any]:
        """Iterate one column of the visible rows."""
        pos = self.schema.position(column)
        for row in self.rows():
            yield row[pos]

    def __repr__(self) -> str:
        return f"Snapshot({self.name!r}, lsn={self.lsn})"
