"""Join operators: nested-loop, index-nested-loop, and hash join.

The choice among these is the engine-level origin of the paper's central
cost asymmetry:

* :class:`IndexNestedLoopJoin` probes an index once per outer tuple --
  cost roughly linear in the outer (delta) size with a small slope and no
  setup.  This is the cheap ``R |x| dS`` path when ``R`` is indexed.
* :class:`HashJoin` builds a hash table on one side and streams the other
  -- a large setup cost (scanning and hashing the big side) that is then
  amortized over the batch.  This is the expensive-but-batchable
  ``dR |x| S`` path when ``S`` has no index: its cost curve has exactly
  the ``b + a*k`` shape of Section 3.3.
* :class:`NestedLoopJoin` is the quadratic fallback for non-equi predicates.

All joins concatenate left and right tuples; layouts merge accordingly.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro import obs
from repro.obs import attrib
from repro.engine.block import RowBlock
from repro.engine.errors import SchemaError
from repro.engine.expr import Expression, resolve_column
from repro.engine.operators import Operator, merged_layout
from repro.engine.snapshot import Snapshot


class NestedLoopJoin(Operator):
    """Materialized inner, arbitrary join predicate; O(|L| * |R|) compares."""

    def __init__(self, left: Operator, right: Operator, predicate: Expression | None):
        self.left = left
        self.counter = left.counter
        self.layout = merged_layout(left.layout, right.layout)
        self._predicate = (
            predicate.compile(self.layout) if predicate is not None else None
        )
        if attrib.active_profile() is not None:
            # Profiled: the inner materialization is this join's "build"
            # phase -- capture its charges (made by the inner operator
            # against the shared counter) as a snapshot delta, so the
            # profile can attribute them to a join-build node.
            before = self.counter.snapshot()
            start = time.perf_counter()
            self._inner = right.rows()
            self._build_wall_ms = (time.perf_counter() - start) * 1e3
            after = self.counter.snapshot()
            self._build_tally = {
                f: after[f] - before[f] for f in after if after[f] != before[f]
            }
            self._build_rows = len(self._inner)
            self._build_label = f"Materialize({attrib._label_for(right)[1]})"
        else:
            self._inner = right.rows()

    def __iter__(self) -> Iterator[tuple]:
        pred = self._predicate
        rows_in = rows_out = 0
        # Tallies accumulate in locals and flush once on exhaustion (or
        # early close), keeping the per-row path free of obs calls.
        try:
            for lrow in self.left:
                rows_in += 1
                for rrow in self._inner:
                    self.counter.charge("compares")
                    row = lrow + rrow
                    if pred is None or pred(row):
                        rows_out += 1
                        yield row
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.nl.rows_in", rows_in)
                recorder.counter("engine.join.nl.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        pred = self._predicate
        inner = self._inner
        layout = self.layout
        prof = self._prof
        rows_in = rows_out = 0
        try:
            for lblock in self.left.blocks(block_size):
                rows_in += len(lblock)
                # One compare per (outer, inner) pair, same as row-at-a-time.
                self.counter.charge("compares", len(lblock) * len(inner))
                if prof is not None:
                    prof.add("compares", len(lblock) * len(inner))
                if pred is None:
                    out = [lrow + rrow for lrow in lblock.rows() for rrow in inner]
                else:
                    out = [
                        row
                        for lrow in lblock.rows()
                        for rrow in inner
                        if pred(row := lrow + rrow)
                    ]
                rows_out += len(out)
                if out:
                    yield RowBlock.from_rows(out, layout)
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.nl.rows_in", rows_in)
                recorder.counter("engine.join.nl.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)


class IndexNestedLoopJoin(Operator):
    """For each outer tuple, probe an index on the inner snapshot.

    ``left_column`` names the outer join key (qualified); ``right_column``
    the inner key, which must have an index on ``snapshot``'s table.  Cost:
    one index probe per outer tuple plus per-match tuple CPU.
    """

    def __init__(
        self,
        left: Operator,
        snapshot: Snapshot,
        alias: str,
        left_column: str,
        right_column: str,
    ):
        if not snapshot.has_index(right_column):
            raise SchemaError(
                f"index-nested-loop join needs an index on "
                f"{snapshot.name}.{right_column}"
            )
        self.left = left
        self.counter = left.counter
        self.snapshot = snapshot
        self.alias = alias
        right_layout = {
            f"{alias}.{name}": pos
            for pos, name in enumerate(snapshot.schema.names)
        }
        self.layout = merged_layout(left.layout, right_layout)
        self._left_pos = resolve_column(left_column, left.layout)
        self._right_column = right_column

    def __iter__(self) -> Iterator[tuple]:
        pos = self._left_pos
        probes = rows_out = 0
        try:
            for lrow in self.left:
                probes += 1
                self.counter.charge("index_probes")
                for rrow in self.snapshot.lookup(self._right_column, lrow[pos]):
                    self.counter.charge("tuple_cpu")
                    rows_out += 1
                    yield lrow + rrow
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.inl.probes", probes)
                recorder.counter("engine.join.inl.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        pos = self._left_pos
        lookup = self.snapshot.lookup
        right_column = self._right_column
        layout = self.layout
        prof = self._prof
        probes = rows_out = 0
        try:
            for lblock in self.left.blocks(block_size):
                probes += len(lblock)
                self.counter.charge("index_probes", len(lblock))
                if prof is not None:
                    prof.add("index_probes", len(lblock))
                out = [
                    lrow + rrow
                    for lrow, key in zip(lblock.rows(), lblock.column(pos))
                    for rrow in lookup(right_column, key)
                ]
                if out:
                    self.counter.charge("tuple_cpu", len(out))
                    if prof is not None:
                        prof.add("tuple_cpu", len(out))
                    rows_out += len(out)
                    yield RowBlock.from_rows(out, layout)
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.inl.probes", probes)
                recorder.counter("engine.join.inl.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)


def probe_block(
    lblock: RowBlock, pos: int, table: dict, layout: dict
) -> RowBlock | None:
    """Probe one left block against a built hash table, charge-free.

    Returns the joined block (left tuple ++ right tuple per match, in
    left-block row order) or None when nothing matched.  Charging --
    ``hash_probes`` per input row, ``tuple_cpu`` per output row -- stays
    with the caller: the serial pipeline charges its counter inline,
    parallel workers record a local tally that the coordinator replays at
    the in-order merge.

    Column-major inputs take a gather fast path: match indices are
    collected from the key column alone, left columns are gathered
    column-by-column (like :meth:`RowBlock.take`), and the output stays
    column-major -- the left block's row view is never materialized.
    """
    keys = lblock.column(pos)
    if lblock.is_columnar:
        idx: list[int] = []
        matches: list[tuple] = []
        for i, key in enumerate(keys):
            for rrow in table.get(key, ()):
                idx.append(i)
                matches.append(rrow)
        if not matches:
            return None
        left_width = len(lblock.layout)
        out_columns = [
            [column[i] for i in idx]
            for column in (lblock.column(p) for p in range(left_width))
        ]
        out_columns.extend(list(c) for c in zip(*matches))
        return RowBlock.from_columns(out_columns, layout, length=len(matches))
    out = [
        lrow + rrow
        for lrow, key in zip(lblock.rows(), keys)
        for rrow in table.get(key, ())
    ]
    if not out:
        return None
    return RowBlock.from_rows(out, layout)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right side, stream the left.

    Build cost is the dominant term when the right side is a big base
    table: the whole table is scanned (page reads via the child scan) and
    hashed (one ``hash_build`` per tuple) *before the first output row* --
    the setup cost ``b`` of the paper's linear cost model.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_column: str,
        right_column: str,
        block_size: int | None = None,
    ):
        self.left = left
        self.counter = left.counter
        self.layout = merged_layout(left.layout, right.layout)
        self._left_pos = resolve_column(left_column, left.layout)
        right_pos = resolve_column(right_column, right.layout)
        self._table: dict = {}
        build_rows = 0
        table = self._table
        profiled = attrib.active_profile() is not None
        if profiled:
            before = self.counter.snapshot()
            start = time.perf_counter()
        if block_size is None:
            for rrow in right:
                build_rows += 1
                self.counter.charge("hash_builds")
                table.setdefault(rrow[right_pos], []).append(rrow)
        else:
            # Blocked build: same rows, same order, same total hash_builds
            # -- one bulk charge per block instead of one call per tuple.
            for rblock in right.blocks(block_size):
                build_rows += len(rblock)
                self.counter.charge("hash_builds", len(rblock))
                for key, rrow in zip(rblock.column(right_pos), rblock.rows()):
                    table.setdefault(key, []).append(rrow)
        if profiled:
            # The snapshot delta covers the hash_builds above plus the
            # inner child's own scan charges -- the full setup cost ``b``
            # attributed to one join-build node.
            self._build_wall_ms = (time.perf_counter() - start) * 1e3
            after = self.counter.snapshot()
            self._build_tally = {
                f: after[f] - before[f] for f in after if after[f] != before[f]
            }
            self._build_rows = build_rows
            self._build_label = f"Build({attrib._label_for(right)[1]})"
        # The build is the setup cost ``b`` of the paper's cost model;
        # surfacing it separately from probe-side output is what lets a
        # trace show where a batch's time actually went.
        obs.counter("engine.join.hash.build_rows", build_rows)

    def __iter__(self) -> Iterator[tuple]:
        pos = self._left_pos
        table = self._table
        probes = rows_out = 0
        try:
            for lrow in self.left:
                probes += 1
                self.counter.charge("hash_probes")
                for rrow in table.get(lrow[pos], ()):
                    self.counter.charge("tuple_cpu")
                    rows_out += 1
                    yield lrow + rrow
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.hash.probes", probes)
                recorder.counter("engine.join.hash.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)

    def blocks(self, block_size: int) -> Iterator[RowBlock]:
        pos = self._left_pos
        table = self._table
        layout = self.layout
        prof = self._prof
        probes = rows_out = 0
        try:
            for lblock in self.left.blocks(block_size):
                probes += len(lblock)
                self.counter.charge("hash_probes", len(lblock))
                if prof is not None:
                    prof.add("hash_probes", len(lblock))
                joined = probe_block(lblock, pos, table, layout)
                if joined is not None:
                    self.counter.charge("tuple_cpu", len(joined))
                    if prof is not None:
                        prof.add("tuple_cpu", len(joined))
                    rows_out += len(joined)
                    yield joined
        finally:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.counter("engine.join.hash.probes", probes)
                recorder.counter("engine.join.hash.rows_out", rows_out)
                recorder.counter("engine.join.rows_out", rows_out)
