"""A small in-memory relational engine with snapshot reads and cost accounting.

This is the substrate replacing the commercial DBMS in the paper's
evaluation.  It provides exactly what batch incremental view maintenance
needs:

* **MVCC-lite storage** (:mod:`repro.engine.table`): every row version
  carries ``(xmin, xmax)`` log sequence numbers, so maintenance queries can
  read each base table *as of the last modification the view has
  incorporated* -- the mechanism that avoids the state bug the paper cites
  from Colby et al.
* **Indexes** (:mod:`repro.engine.index`): hash and sorted secondary
  indexes; index availability is the paper's canonical source of cost
  asymmetry between delta tables.
* **Physical operators** (:mod:`repro.engine.operators`,
  :mod:`repro.engine.join`, :mod:`repro.engine.aggregate`): scans, filters,
  projections, nested-loop / index-nested-loop / hash joins, and grouped
  aggregation with incrementally maintainable MIN/MAX.
* **A deterministic cost model** (:mod:`repro.engine.costmodel`): physical
  operators charge page reads, probes, and tuple operations to a counter;
  the weighted total is the engine's simulated elapsed time.  This replaces
  wall-clock measurement and makes every experiment reproducible bit-for-bit.
* **A database facade** (:mod:`repro.engine.database`) with a rudimentary
  planner that picks join order and algorithms from available indexes.
"""

from repro.engine.errors import EngineError, ExecutionError, SchemaError
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.costmodel import CostModel, OperationCounter
from repro.engine.table import ModEvent, Table
from repro.engine.snapshot import Snapshot
from repro.engine.index import HashIndex, SortedIndex
from repro.engine.expr import (
    BinOp,
    ColumnRef,
    Comparison,
    Const,
    Expression,
    and_,
    col,
    lit,
)
from repro.engine.query import AggregateSpec, JoinSpec, OrderSpec, QuerySpec
from repro.engine.database import Database

__all__ = [
    "AggregateSpec",
    "BinOp",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Comparison",
    "Const",
    "CostModel",
    "Database",
    "EngineError",
    "ExecutionError",
    "Expression",
    "HashIndex",
    "JoinSpec",
    "ModEvent",
    "OperationCounter",
    "OrderSpec",
    "QuerySpec",
    "Schema",
    "SchemaError",
    "Snapshot",
    "SortedIndex",
    "Table",
    "and_",
    "col",
    "lit",
]
