"""Text generation for TPC-R columns.

dbgen builds its strings (supplier names, addresses, comments, phone
numbers) from fixed grammars and word pools.  We reproduce the observable
structure -- formats, lengths, country-code arithmetic -- from compact
seeded pools rather than shipping dbgen's full dictionaries; nothing in the
paper's experiments reads the prose, but realistic row widths keep the
page-count cost model honest.
"""

from __future__ import annotations

import random

#: The five TPC-R regions, in regionkey order.
REGIONS: tuple[str, ...] = (
    "AFRICA",
    "AMERICA",
    "ASIA",
    "EUROPE",
    "MIDDLE EAST",
)

#: The 25 TPC-R nations as ``(name, regionkey)`` in nationkey order.
NATIONS: tuple[tuple[str, int], ...] = (
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)

#: Word pool for comment text (a condensed version of dbgen's grammar).
_COMMENT_WORDS: tuple[str, ...] = (
    "furiously", "carefully", "quickly", "blithely", "slyly", "final",
    "special", "pending", "regular", "express", "ironic", "even", "bold",
    "requests", "deposits", "accounts", "packages", "instructions",
    "theodolites", "pinto", "beans", "foxes", "ideas", "dependencies",
    "platelets", "excuses", "asymptotes", "courts", "dolphins", "sleep",
    "nag", "haggle", "wake", "use", "cajole", "detect", "integrate",
    "boost", "among", "above", "after", "along", "across",
)

_PART_TYPES_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_PART_TYPES_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_PART_TYPES_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
_CONTAINERS_1 = ("SM", "MED", "LG", "JUMBO", "WRAP")
_CONTAINERS_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
_PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream",
    "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
    "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
    "honeydew", "hot", "hotpink", "indian", "ivory", "khaki", "lace",
    "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
    "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
    "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach",
    "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose",
    "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna",
    "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
    "tomato", "turquoise", "violet", "wheat", "white", "yellow",
)
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")


def comment(rng: random.Random, min_words: int = 4, max_words: int = 10) -> str:
    """A dbgen-flavoured comment string."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_COMMENT_WORDS) for __ in range(count))


def v_string(rng: random.Random, min_len: int = 10, max_len: int = 40) -> str:
    """dbgen's V-string: random alphanumerics of random length (addresses)."""
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789,. "
    length = rng.randint(min_len, max_len)
    return "".join(rng.choice(alphabet) for __ in range(length))


def phone(rng: random.Random, nationkey: int) -> str:
    """dbgen phone format: ``CC-LLL-LLL-LLLL`` with country code 10+nation."""
    country = nationkey + 10
    return (
        f"{country}-{rng.randint(100, 999)}-{rng.randint(100, 999)}"
        f"-{rng.randint(1000, 9999)}"
    )


def part_name(rng: random.Random) -> str:
    """Five distinct colour words, dbgen's P_NAME rule."""
    return " ".join(rng.sample(_PART_NAME_WORDS, 5))


def part_type(rng: random.Random) -> str:
    """Three-component part type string."""
    return (
        f"{rng.choice(_PART_TYPES_1)} {rng.choice(_PART_TYPES_2)} "
        f"{rng.choice(_PART_TYPES_3)}"
    )


def part_container(rng: random.Random) -> str:
    """Two-component container string."""
    return f"{rng.choice(_CONTAINERS_1)} {rng.choice(_CONTAINERS_2)}"

def part_brand(rng: random.Random) -> str:
    """``Brand#MN`` with M, N in 1..5."""
    return f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"


def market_segment(rng: random.Random) -> str:
    """One of the five TPC-R customer market segments."""
    return rng.choice(_SEGMENTS)


def order_priority(rng: random.Random) -> str:
    """One of the five TPC-R order priorities."""
    return rng.choice(_PRIORITIES)


def clerk(rng: random.Random, scale: float) -> str:
    """``Clerk#000000NNN`` scaled like dbgen (1000 clerks per SF)."""
    max_clerk = max(1, int(scale * 1000))
    return f"Clerk#{rng.randint(1, max_clerk):09d}"
