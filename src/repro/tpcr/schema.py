"""TPC-R table schemas and cardinality rules.

Column sets follow the TPC-R (equivalently TPC-H) specification; money
columns are floats (the engine has no DECIMAL type and nothing in the
experiments depends on exact decimal arithmetic), dates are ``YYYY-MM-DD``
strings so they sort correctly.
"""

from __future__ import annotations

from repro.engine.types import ColumnType, Schema

_I = ColumnType.INT
_F = ColumnType.FLOAT
_S = ColumnType.STR

#: Schemas keyed by lowercase table name.
TPCR_SCHEMAS: dict[str, Schema] = {
    "region": Schema.of(regionkey=_I, name=_S, comment=_S),
    "nation": Schema.of(nationkey=_I, name=_S, regionkey=_I, comment=_S),
    "supplier": Schema.of(
        suppkey=_I, name=_S, address=_S, nationkey=_I, phone=_S,
        acctbal=_F, comment=_S,
    ),
    "part": Schema.of(
        partkey=_I, name=_S, mfgr=_S, brand=_S, type=_S, size=_I,
        container=_S, retailprice=_F, comment=_S,
    ),
    "partsupp": Schema.of(
        partkey=_I, suppkey=_I, availqty=_I, supplycost=_F, comment=_S,
    ),
    "customer": Schema.of(
        custkey=_I, name=_S, address=_S, nationkey=_I, phone=_S,
        acctbal=_F, mktsegment=_S, comment=_S,
    ),
    "orders": Schema.of(
        orderkey=_I, custkey=_I, orderstatus=_S, totalprice=_F,
        orderdate=_S, orderpriority=_S, clerk=_S, shippriority=_I,
        comment=_S,
    ),
    "lineitem": Schema.of(
        orderkey=_I, partkey=_I, suppkey=_I, linenumber=_I, quantity=_F,
        extendedprice=_F, discount=_F, tax=_F, returnflag=_S, linestatus=_S,
        shipdate=_S, commitdate=_S, receiptdate=_S, shipinstruct=_S,
        shipmode=_S, comment=_S,
    ),
}

#: Base cardinalities at scale factor 1 (region/nation are fixed-size).
_BASE_CARDINALITIES: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,  # 4 suppliers per part
    "customer": 150_000,
    "orders": 1_500_000,
    # lineitem cardinality is stochastic (1-7 lines per order); the
    # generator draws it, so no fixed entry here.
}


def table_cardinality(table: str, scale: float) -> int:
    """Row count of ``table`` at scale factor ``scale``.

    Region and nation are fixed regardless of scale, per the spec.
    """
    if table not in TPCR_SCHEMAS:
        raise KeyError(f"unknown TPC-R table {table!r}")
    if table == "lineitem":
        raise KeyError("lineitem cardinality is stochastic; generate orders")
    base = _BASE_CARDINALITIES[table]
    if table in ("region", "nation"):
        return base
    if scale <= 0:
        raise ValueError(f"scale factor must be positive, got {scale}")
    return max(1, round(base * scale))
