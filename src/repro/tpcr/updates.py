"""The paper's update streams (Section 5).

"Each modification randomly updates either a PartSupp row's supplycost, or
a Supplier row's nationkey."  :class:`PartSuppCostUpdater` and
:class:`SupplierNationUpdater` implement exactly those, deterministically
from a seed.

Updaters track the live row ids themselves (an update supersedes a row
version, so the fresh version's id must replace the old one); this keeps
picking a random victim O(1) instead of scanning the table.
"""

from __future__ import annotations

import random

from repro.engine.table import ModEvent, Table
from repro.tpcr.text import NATIONS


class TableUpdater:
    """Base class: applies random single-row updates to one table."""

    def __init__(self, table: Table, seed: int = 7):
        self.table = table
        self.rng = random.Random(f"{seed}/{table.name}")
        # Live row ids at construction time; maintained incrementally.
        self._live_rids = [
            rid
            for rid in range(table.version_count())
            if table.version(rid).xmax is None
        ]
        if not self._live_rids:
            raise ValueError(f"table {table.name!r} is empty; nothing to update")

    def _mutate_row(self, rid: int) -> ModEvent:
        """Apply one update to the row at ``rid``; return the event."""
        raise NotImplementedError

    def apply_one(self) -> ModEvent:
        """Apply one random update; returns the logged event."""
        slot = self.rng.randrange(len(self._live_rids))
        rid = self._live_rids[slot]
        event = self._mutate_row(rid)
        # The update created a fresh version at the end of the heap.
        self._live_rids[slot] = self.table.version_count() - 1
        return event

    def apply(self, k: int) -> list[ModEvent]:
        """Apply ``k`` random updates."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return [self.apply_one() for __ in range(k)]

    def __call__(self, k: int) -> None:
        """Mutator interface for :func:`repro.ivm.calibration.measure_cost_function`."""
        self.apply(k)


class PartSuppCostUpdater(TableUpdater):
    """Random ``supplycost`` updates on PartSupp, uniform in [1.00, 1000.00]."""

    def _mutate_row(self, rid: int) -> ModEvent:
        new_cost = round(self.rng.uniform(1.00, 1000.00), 2)
        return self.table.update_rid(rid, {"supplycost": new_cost})


class SupplierNationUpdater(TableUpdater):
    """Random ``nationkey`` updates on Supplier, uniform over the 25 nations."""

    def _mutate_row(self, rid: int) -> ModEvent:
        new_nation = self.rng.randrange(len(NATIONS))
        return self.table.update_rid(rid, {"nationkey": new_nation})


class NationRegionUpdater(TableUpdater):
    """Random ``regionkey`` updates on Nation, uniform over the 5 regions.

    Not one of the paper's streams -- the third modification dimension for
    the n = 3 scheduling extension (`repro.experiments.three_way`).  A
    nation moving region drags every one of its suppliers' PartSupp rows
    in or out of the view: the highest-fan-out, most expensive stream.
    """

    def _mutate_row(self, rid: int) -> ModEvent:
        new_region = self.rng.randrange(5)
        return self.table.update_rid(rid, {"regionkey": new_region})
