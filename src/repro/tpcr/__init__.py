"""A dbgen-style TPC-R data generator and the paper's update streams.

TPC-R shares its schema and population rules with TPC-H; the paper's
experiments use its PartSupp / Supplier / Nation / Region tables.  This
subpackage generates all eight benchmark tables deterministically from a
seed, at any scale factor (row counts scale linearly, preserving the
PartSupp : Supplier = 80 : 1 ratio the paper's cost asymmetry rests on),
and provides the two update streams of Section 5:

* random updates to ``PartSupp.supplycost``,
* random updates to ``Supplier.nationkey``.
"""

from repro.tpcr.schema import TPCR_SCHEMAS, table_cardinality
from repro.tpcr.gen import TpcrGenerator, load_tpcr
from repro.tpcr.updates import (
    NationRegionUpdater,
    PartSuppCostUpdater,
    SupplierNationUpdater,
    TableUpdater,
)

__all__ = [
    "NationRegionUpdater",
    "PartSuppCostUpdater",
    "SupplierNationUpdater",
    "TableUpdater",
    "TPCR_SCHEMAS",
    "TpcrGenerator",
    "load_tpcr",
    "table_cardinality",
]
