"""Row generation and database loading for TPC-R.

:class:`TpcrGenerator` yields rows per table using dbgen's population
rules (deterministic given a seed):

* ``partsupp``: each part gets exactly 4 suppliers via dbgen's
  stride formula, which spreads a part's suppliers across the supplier
  key space so the join degree is uniform;
* ``supplier.nationkey`` and ``customer.nationkey``: uniform over the 25
  nations;
* money columns: uniform in the spec's ranges (e.g. ``supplycost`` in
  [1.00, 1000.00]);
* ``orders``/``lineitem``: order dates uniform over the spec's seven-year
  window, 1-7 line items per order.

:func:`load_tpcr` creates and populates the tables in a
:class:`~repro.engine.database.Database`, optionally restricted to the
tables an experiment needs (the paper's view touches only region, nation,
supplier, and partsupp).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.engine.database import Database
from repro.tpcr import text
from repro.tpcr.schema import TPCR_SCHEMAS, table_cardinality

#: Order of table generation respecting foreign-key dependencies.
GENERATION_ORDER: tuple[str, ...] = (
    "region",
    "nation",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)


def partsupp_suppkey(partkey: int, i: int, supplier_count: int) -> int:
    """dbgen's supplier assignment for the ``i``-th (0..3) supplier of a part.

    ``ps_suppkey = (ps_partkey + (i * (S/4 + (ps_partkey - 1) / S))) % S + 1``
    where ``S`` is the number of suppliers.  Spreads each part's suppliers
    roughly evenly around the key space.
    """
    s = supplier_count
    return (partkey + i * (s // 4 + (partkey - 1) // s)) % s + 1


class TpcrGenerator:
    """Deterministic row generator for all TPC-R tables."""

    def __init__(self, scale: float = 0.01, seed: int = 19721212):
        if scale <= 0:
            raise ValueError(f"scale factor must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    def _rng(self, table: str) -> random.Random:
        """A per-table stream so tables can be generated independently."""
        return random.Random(f"{self.seed}/{table}")

    def rows(self, table: str) -> Iterator[tuple]:
        """Yield the rows of ``table`` in primary-key order."""
        generator = getattr(self, f"_gen_{table}", None)
        if generator is None:
            raise KeyError(f"unknown TPC-R table {table!r}")
        return generator()

    # ------------------------------------------------------------------
    # Per-table generators
    # ------------------------------------------------------------------

    def _gen_region(self) -> Iterator[tuple]:
        rng = self._rng("region")
        for key, name in enumerate(text.REGIONS):
            yield (key, name, text.comment(rng))

    def _gen_nation(self) -> Iterator[tuple]:
        rng = self._rng("nation")
        for key, (name, regionkey) in enumerate(text.NATIONS):
            yield (key, name, regionkey, text.comment(rng))

    def _gen_supplier(self) -> Iterator[tuple]:
        rng = self._rng("supplier")
        for suppkey in range(1, table_cardinality("supplier", self.scale) + 1):
            nationkey = rng.randrange(len(text.NATIONS))
            yield (
                suppkey,
                f"Supplier#{suppkey:09d}",
                text.v_string(rng, 10, 40),
                nationkey,
                text.phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                text.comment(rng),
            )

    def _gen_part(self) -> Iterator[tuple]:
        rng = self._rng("part")
        for partkey in range(1, table_cardinality("part", self.scale) + 1):
            yield (
                partkey,
                text.part_name(rng),
                f"Manufacturer#{rng.randint(1, 5)}",
                text.part_brand(rng),
                text.part_type(rng),
                rng.randint(1, 50),
                text.part_container(rng),
                (90000 + (partkey // 10) % 20001 + 100 * (partkey % 1000))
                / 100.0,
                text.comment(rng),
            )

    def _gen_partsupp(self) -> Iterator[tuple]:
        rng = self._rng("partsupp")
        suppliers = table_cardinality("supplier", self.scale)
        for partkey in range(1, table_cardinality("part", self.scale) + 1):
            for i in range(4):
                yield (
                    partkey,
                    partsupp_suppkey(partkey, i, suppliers),
                    rng.randint(1, 9999),
                    round(rng.uniform(1.00, 1000.00), 2),
                    text.comment(rng),
                )

    def _gen_customer(self) -> Iterator[tuple]:
        rng = self._rng("customer")
        for custkey in range(1, table_cardinality("customer", self.scale) + 1):
            nationkey = rng.randrange(len(text.NATIONS))
            yield (
                custkey,
                f"Customer#{custkey:09d}",
                text.v_string(rng, 10, 40),
                nationkey,
                text.phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                text.market_segment(rng),
                text.comment(rng),
            )

    def _gen_orders(self) -> Iterator[tuple]:
        rng = self._rng("orders")
        customers = table_cardinality("customer", self.scale)
        for orderkey in range(1, table_cardinality("orders", self.scale) + 1):
            yield (
                orderkey,
                rng.randint(1, customers),
                rng.choice(("O", "F", "P")),
                round(rng.uniform(1000.0, 500000.0), 2),
                _random_date(rng, 1992, 1998),
                text.order_priority(rng),
                text.clerk(rng, self.scale),
                0,
                text.comment(rng),
            )

    def _gen_lineitem(self) -> Iterator[tuple]:
        rng = self._rng("lineitem")
        parts = table_cardinality("part", self.scale)
        suppliers = table_cardinality("supplier", self.scale)
        for orderkey in range(1, table_cardinality("orders", self.scale) + 1):
            for linenumber in range(1, rng.randint(1, 7) + 1):
                partkey = rng.randint(1, parts)
                suppkey = partsupp_suppkey(
                    partkey, rng.randrange(4), suppliers
                )
                quantity = float(rng.randint(1, 50))
                extended = round(quantity * rng.uniform(900.0, 1100.0), 2)
                shipdate = _random_date(rng, 1992, 1998)
                yield (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    extended,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(("A", "N", "R")),
                    rng.choice(("O", "F")),
                    shipdate,
                    _random_date(rng, 1992, 1998),
                    _random_date(rng, 1992, 1998),
                    rng.choice(
                        ("DELIVER IN PERSON", "COLLECT COD", "NONE",
                         "TAKE BACK RETURN")
                    ),
                    rng.choice(
                        ("AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP",
                         "TRUCK")
                    ),
                    text.comment(rng, 2, 6),
                )


def _random_date(rng: random.Random, year_lo: int, year_hi: int) -> str:
    """A ``YYYY-MM-DD`` date uniform over whole years (28-day months keep
    it simple and valid)."""
    return (
        f"{rng.randint(year_lo, year_hi):04d}-"
        f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    )


def load_tpcr(
    db: Database,
    scale: float = 0.01,
    seed: int = 19721212,
    tables: Sequence[str] | None = None,
) -> dict[str, int]:
    """Create and populate TPC-R tables in ``db``.

    Returns per-table row counts.  ``tables`` defaults to the four tables
    of the paper's experiment view (region, nation, supplier, partsupp);
    pass explicit names (in any order) for more.
    """
    wanted = set(
        tables if tables is not None
        else ("region", "nation", "supplier", "partsupp")
    )
    unknown = wanted - set(TPCR_SCHEMAS)
    if unknown:
        raise KeyError(f"unknown TPC-R tables {sorted(unknown)}")
    generator = TpcrGenerator(scale=scale, seed=seed)
    counts: dict[str, int] = {}
    for table_name in GENERATION_ORDER:
        if table_name not in wanted:
            continue
        table = db.create_table(table_name, TPCR_SCHEMAS[table_name])
        count = 0
        for row in generator.rows(table_name):
            table.insert(row)
            count += 1
        counts[table_name] = count
    return counts
