"""Delta tables: the unprocessed-modification queues of the paper.

Each materialized view keeps one :class:`DeltaTable` per base table it
reads.  Base-table modifications are applied to the base tables
immediately (the paper's setting); the delta table records which of those
modifications the *view* has not yet incorporated.

Concretely a delta table is a FIFO window over the base table's
modification history between two LSNs:

* ``applied_lsn`` -- everything at or below this LSN is reflected in the
  view's contents; maintenance joins read the base table's snapshot at
  this LSN (state-bug safety);
* ``seen_lsn`` -- the newest modification the delta table has pulled from
  the base table's history.

``size`` (the paper's ``s_t[i]`` component) is the number of events in
between.  Taking a batch pops the ``k`` oldest events and advances
``applied_lsn`` to the last popped event -- FIFO order, exactly the
processing discipline Section 3's analysis assumes.
"""

from __future__ import annotations

from collections import deque

from repro.engine.errors import ExecutionError
from repro.engine.table import ModEvent, Table


class DeltaTable:
    """Pending modifications of one base table, from one view's perspective."""

    def __init__(self, table: Table):
        self.table = table
        #: LSN up to which the view has incorporated this table.
        self.applied_lsn = table.current_lsn
        #: LSN up to which events have been pulled into the queue.
        self.seen_lsn = table.current_lsn
        self._pending: deque[ModEvent] = deque()

    @property
    def size(self) -> int:
        """Number of unprocessed modifications (``s_t[i]`` in the paper)."""
        return len(self._pending)

    def pull(self) -> int:
        """Ingest new base-table modifications into the queue.

        Returns the number of newly ingested events.  Call after base-table
        modifications to keep the delta table current; the maintainer does
        this at every time step.
        """
        events = self.table.events_between(self.seen_lsn, self.table.current_lsn)
        for event in events:
            self._pending.append(event)
        if events:
            self.seen_lsn = events[-1].lsn
        return len(events)

    def peek(self, k: int) -> list[ModEvent]:
        """The ``k`` oldest pending events, without removing them."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return [self._pending[i] for i in range(min(k, len(self._pending)))]

    def take(self, k: int) -> list[ModEvent]:
        """Pop the ``k`` oldest events and advance ``applied_lsn``.

        FIFO and contiguous: after taking, the view-incorporated snapshot
        of this base table is exactly the state after the last taken event.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k > len(self._pending):
            raise ExecutionError(
                f"cannot take {k} events; only {len(self._pending)} pending "
                f"for {self.table.name}"
            )
        taken = [self._pending.popleft() for __ in range(k)]
        if taken:
            self.applied_lsn = taken[-1].lsn
        elif not self._pending:
            # Taking zero with an empty queue: the view is caught up with
            # everything it has seen.
            self.applied_lsn = self.seen_lsn
        return taken

    def take_all(self) -> list[ModEvent]:
        """Pop every pending event (a full flush of this delta table)."""
        return self.take(len(self._pending))

    def __repr__(self) -> str:
        return (
            f"DeltaTable({self.table.name!r}, size={self.size}, "
            f"applied_lsn={self.applied_lsn})"
        )
