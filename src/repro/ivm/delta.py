"""Delta tables: the unprocessed-modification queues of the paper.

Each materialized view keeps one :class:`DeltaTable` per base table it
reads.  Base-table modifications are applied to the base tables
immediately (the paper's setting); the delta table records which of those
modifications the *view* has not yet incorporated.

Concretely a delta table is a FIFO window over the base table's
modification history between two LSNs:

* ``applied_lsn`` -- everything at or below this LSN is reflected in the
  view's contents; maintenance joins read the base table's snapshot at
  this LSN (state-bug safety);
* ``seen_lsn`` -- the newest modification the delta table has pulled from
  the base table's history.

``size`` (the paper's ``s_t[i]`` component) is the number of events in
between.  Taking a batch pops the ``k`` oldest events and advances
``applied_lsn`` to the last popped event -- FIFO order, exactly the
processing discipline Section 3's analysis assumes.

Storage: a delta table holds **no events at all** -- just the two LSNs.
The events live once, in the owning table's shared chunked
:class:`~repro.engine.table.ModLog`, and every read here is a contiguous
window into it.  Eight views over one base table cost eight offset pairs,
not eight copies of its history (``tests/integration/
test_block_equivalence.py`` asserts the sharing).  This works because the
log is LSN-dense (one event per LSN), so the window boundaries alone
determine the batch: ``size == seen_lsn - applied_lsn`` is arithmetic, and
``peek``/``take`` are O(k) slices.
"""

from __future__ import annotations

from repro import obs
from repro.engine.errors import ExecutionError
from repro.engine.table import ModEvent, Table


class DeltaTable:
    """Pending modifications of one base table, from one view's perspective."""

    def __init__(self, table: Table):
        self.table = table
        #: The shared modification log (owned by the table, never copied).
        self.log = table.history
        #: LSN up to which the view has incorporated this table.
        self.applied_lsn = table.current_lsn
        #: LSN up to which events have been pulled into the window.
        self.seen_lsn = table.current_lsn
        # Pin the unprocessed window against log truncation: as long as
        # this delta table is alive (and not closed), history above
        # ``applied_lsn`` survives ``log.truncate()``.  The registration
        # is weak, so a garbage-collected delta never pins history.
        self.log.subscribe(self)

    def close(self) -> None:
        """Release this delta's truncation pin on the shared log.

        Idempotent.  Call when the owning view is dropped; afterwards the
        log may reclaim the history this window was holding.
        """
        self.log.unsubscribe(self)

    @property
    def size(self) -> int:
        """Number of unprocessed modifications (``s_t[i]`` in the paper)."""
        return self.seen_lsn - self.applied_lsn

    def pull(self) -> int:
        """Extend the window over new base-table modifications.

        Returns the number of newly ingested events.  Call after base-table
        modifications to keep the delta table current; the maintainer does
        this at every time step.  O(1): the log is shared, so "ingesting"
        is advancing ``seen_lsn``.
        """
        current = self.table.current_lsn
        new = current - self.seen_lsn
        if new:
            self.seen_lsn = current
            obs.counter("ivm.delta.window_pulled", new)
        return new

    def peek(self, k: int) -> list[ModEvent]:
        """The ``k`` oldest pending events, without removing them."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        upto = min(self.applied_lsn + k, self.seen_lsn)
        return self.log.window(self.applied_lsn, upto)

    def take(self, k: int) -> list[ModEvent]:
        """Pop the ``k`` oldest events and advance ``applied_lsn``.

        FIFO and contiguous: after taking, the view-incorporated snapshot
        of this base table is exactly the state after the last taken event.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k > self.size:
            raise ExecutionError(
                f"cannot take {k} events; only {self.size} pending "
                f"for {self.table.name}"
            )
        taken = self.log.window(self.applied_lsn, self.applied_lsn + k)
        self.applied_lsn += k
        if k:
            obs.counter("ivm.delta.window_taken", k)
        return taken

    def take_all(self) -> list[ModEvent]:
        """Pop every pending event (a full flush of this delta table)."""
        return self.take(self.size)

    def __repr__(self) -> str:
        return (
            f"DeltaTable({self.table.name!r}, size={self.size}, "
            f"applied_lsn={self.applied_lsn})"
        )
