"""Materialized views: SPJ multisets and aggregate states.

A :class:`MaterializedView` couples a query definition with materialized
contents and per-base-table delta tables.  Two content shapes:

* **SPJ views** (no aggregate): contents are a multiset of result rows
  (counted dict) -- duplicates matter for correct incremental maintenance
  (Griffin & Libkin's counting approach);
* **aggregate views**: contents are one
  :class:`~repro.engine.aggregate.AggregateState` per group (a single
  implicit group for scalar aggregates like the paper's MIN view).

The view also owns the consistency bookkeeping: which base-table LSNs its
contents reflect (via the delta tables), and a from-scratch
:meth:`recompute` used by tests and by the paranoid ``verify`` mode of the
maintainer.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.engine.aggregate import AggregateState, make_aggregate_state
from repro.engine.database import Database
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.expr import resolve_column
from repro.engine.query import QuerySpec
from repro.ivm.delta import DeltaTable


class MaterializedView:
    """A view over ``database`` maintained batch-incrementally."""

    def __init__(self, name: str, database: Database, spec: QuerySpec):
        self.name = name
        self.database = database
        self.spec = spec
        #: one delta table per alias, keyed by alias
        self.deltas: dict[str, DeltaTable] = {
            alias: DeltaTable(database.table(spec.table_of(alias)))
            for alias in spec.aliases
        }
        # Rebased query specs (delta alias as the driving table), built
        # once -- maintenance uses these so a small delta batch drives the
        # join and can exploit inner-table indexes.
        self.rebased_specs: dict[str, QuerySpec] = {
            alias: spec.rebased(alias) for alias in spec.aliases
        }
        self.is_aggregate = spec.aggregate is not None
        self._rows: Counter | None = None
        self._groups: dict[tuple, AggregateState] | None = None
        self._refcols: dict[str, frozenset[str] | None] = {}
        self._initialize()

    def close(self) -> None:
        """Release the view's delta subscriptions on the shared mod logs.

        Idempotent.  After closing, the base tables' histories may be
        truncated past whatever this view had not yet applied; the view's
        contents stay readable but it must not be maintained further.
        """
        for delta in self.deltas.values():
            delta.close()

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------

    def _initialize(self) -> None:
        """Materialize from the current base-table state."""
        if self.is_aggregate:
            # Stream the un-aggregated join so the states carry exact
            # multiset information (a finished aggregate value alone could
            # not support incremental deletes).
            self._groups = self._fold_from_scratch()
            self._columns: tuple[str, ...] = ()
        else:
            result = self.database.execute(self.spec)
            self._rows = Counter(result.rows)
            # Canonical column order for SPJ contents: incremental batches
            # arrive in *rebased* join order (and un-projected), so every
            # derived row is reordered/projected to this layout before it
            # touches the multiset.
            self._columns = result.columns

    def _fold_from_scratch(self) -> dict[tuple, AggregateState]:
        """Build aggregate states by streaming the un-aggregated join."""
        agg = self.spec.aggregate
        assert agg is not None
        flat_spec = QuerySpec(
            base_alias=self.spec.base_alias,
            base_table=self.spec.base_table,
            joins=self.spec.joins,
            filters=self.spec.filters,
        )
        result = self.database.execute(flat_spec)
        layout = {name: i for i, name in enumerate(result.columns)}
        value_fn = agg.value.compile(layout)
        group_positions = [resolve_column(g, layout) for g in agg.group_by]
        # Bucket rows by group key (preserving row order), then fold each
        # bucket with one bulk insert_many: identical states and identical
        # total agg_updates as per-row insertion, fewer charge calls.
        buckets: dict[tuple, list] = {}
        for row in result.rows:
            key = tuple(row[p] for p in group_positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [value_fn(row)]
            else:
                bucket.append(value_fn(row))
        groups: dict[tuple, AggregateState] = {}
        for key, values in buckets.items():
            state = make_aggregate_state(agg.func, self.database.counter)
            state.insert_many(values)
            groups[key] = state
        return groups

    def contents(self) -> dict:
        """The current materialized contents.

        SPJ views: ``{row_tuple: multiplicity}``.  Aggregate views:
        ``{group_key_tuple: aggregate_value}``.
        """
        if self.is_aggregate:
            assert self._groups is not None
            return {k: s.result() for k, s in self._groups.items()}
        assert self._rows is not None
        return {row: count for row, count in self._rows.items() if count}

    def scalar(self) -> Any:
        """Value of a scalar aggregate view (None over empty input)."""
        if not self.is_aggregate or self.spec.aggregate.group_by:
            raise SchemaError(f"view {self.name!r} is not a scalar aggregate")
        assert self._groups is not None
        state = self._groups.get(())
        return state.result() if state is not None else None

    # ------------------------------------------------------------------
    # Incremental application (called by repro.ivm.maintenance)
    # ------------------------------------------------------------------

    def apply_insert_rows(self, rows: list[tuple], layout: dict[str, int]) -> None:
        """Fold freshly derived join-result rows into the contents."""
        self._apply(rows, layout, sign=+1)

    def apply_delete_rows(self, rows: list[tuple], layout: dict[str, int]) -> None:
        """Remove derived join-result rows from the contents."""
        self._apply(rows, layout, sign=-1)

    def _apply(self, rows: list[tuple], layout: dict[str, int], sign: int) -> None:
        if self.is_aggregate:
            agg = self.spec.aggregate
            assert agg is not None and self._groups is not None
            value_fn = agg.value.compile(layout)
            group_positions = [resolve_column(g, layout) for g in agg.group_by]
            if sign > 0:
                # Inserts fold in bulk: bucket by group key (row order
                # preserved within each group) and insert_many per bucket
                # -- same states, same total agg_updates as per-row
                # insertion.  Deletes stay per-row below: each one may
                # empty a group or trigger an extremum recomputation.
                buckets: dict[tuple, list] = {}
                for row in rows:
                    key = tuple(row[p] for p in group_positions)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [value_fn(row)]
                    else:
                        bucket.append(value_fn(row))
                for key, values in buckets.items():
                    state = self._groups.get(key)
                    if state is None:
                        state = make_aggregate_state(
                            agg.func, self.database.counter
                        )
                        self._groups[key] = state
                    state.insert_many(values)
                return
            for row in rows:
                key = tuple(row[p] for p in group_positions)
                state = self._groups.get(key)
                if state is None:
                    raise ExecutionError(
                        f"view {self.name!r}: delete from absent group "
                        f"{key!r}"
                    )
                state.delete(value_fn(row))
                if state.is_empty():
                    del self._groups[key]
        else:
            assert self._rows is not None
            # Reorder/project each derived row into the view's canonical
            # column layout (incremental rows arrive in rebased join order).
            positions = [resolve_column(c, layout) for c in self._columns]
            canonical = [tuple(row[p] for p in positions) for row in rows]
            if sign > 0:
                self._rows.update(canonical)
            else:
                self._rows.subtract(canonical)
                for row in canonical:
                    if self._rows[row] < 0:
                        raise ExecutionError(
                            f"view {self.name!r}: negative multiplicity for "
                            f"{row!r} -- delta propagation bug"
                        )

    # ------------------------------------------------------------------
    # Delta sensitivity (used by shared-scan no-op suppression)
    # ------------------------------------------------------------------

    def referenced_columns(self, alias: str) -> frozenset[str] | None:
        """Bare columns of ``alias`` this view's contents can depend on.

        Returns ``None`` when every column matters (suppression is then
        impossible): SPJ views without a projection expose whole rows, and
        ordered/limited/distinct specs are treated conservatively.  An
        update event whose old and new rows agree on every returned column
        provably leaves the view unchanged -- the derived insert and
        delete batches are identical multisets over the columns the view
        consumes, so they cancel.  Cached per alias.
        """
        try:
            return self._refcols[alias]
        except KeyError:
            pass
        cols = self._referenced_columns(alias)
        self._refcols[alias] = cols
        return cols

    def _referenced_columns(self, alias: str) -> frozenset[str] | None:
        spec = self.spec
        if spec.limit is not None or spec.distinct or spec.order_by:
            return None
        if spec.aggregate is None and spec.projection is None:
            return None
        table = self.database.table(spec.table_of(alias))
        own = set(table.schema.names)
        referenced: set[str] = set()

        def add(name: str) -> None:
            # Qualified names must name this alias; bare names are kept
            # whenever they *could* resolve here (over-approximating the
            # dependency is safe -- it only disables suppression).
            qualifier, dot, bare = name.partition(".")
            if dot:
                if qualifier == alias:
                    referenced.add(bare)
            elif name in own:
                referenced.add(name)

        for join in spec.joins:
            if join.alias == alias:
                referenced.add(join.right_column)
            add(join.left_column)
        for predicate in spec.filters:
            for name in predicate.references():
                add(name)
        if spec.aggregate is not None:
            for name in spec.aggregate.value.references():
                add(name)
            for name in spec.aggregate.group_by:
                add(name)
        else:
            assert spec.projection is not None
            for name in spec.projection:
                add(name)
        return frozenset(referenced)

    # ------------------------------------------------------------------
    # Consistency checks
    # ------------------------------------------------------------------

    def is_stale(self) -> bool:
        """True when any delta table holds unprocessed modifications."""
        return any(d.size for d in self.deltas.values())

    def pending_sizes(self) -> dict[str, int]:
        """Per-alias unprocessed modification counts (the state vector)."""
        return {alias: d.size for alias, d in self.deltas.items()}

    def recompute(self) -> dict:
        """Contents recomputed from scratch at the view-incorporated LSNs.

        Used by tests and the maintainer's ``verify`` mode: the
        incrementally maintained contents must always equal this.
        """
        lsns = {alias: d.applied_lsn for alias, d in self.deltas.items()}
        if self.is_aggregate:
            result = self.database.execute(self.spec, snapshot_lsns=lsns)
            out = {}
            for row in result.rows:
                key, value = row[:-1], row[-1]
                if value is None:
                    continue
                out[key] = value
            return out
        result = self.database.execute(self.spec, snapshot_lsns=lsns)
        counted = Counter(result.rows)
        return dict(counted)

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name!r}, pending={self.pending_sizes()})"
        )
