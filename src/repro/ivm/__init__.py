"""Incremental view maintenance on top of the relational engine.

This subpackage is the "live system" half of the paper's methodology:

* :mod:`repro.ivm.delta` -- per-(view, base-table) delta tables: FIFO
  windows over a base table's modification history, with the LSN
  bookkeeping that defines which base-table state the view has
  incorporated;
* :mod:`repro.ivm.view` -- materialized SPJ and aggregate views with
  multiset / aggregate-state contents;
* :mod:`repro.ivm.maintenance` -- batch delta propagation: joins a batch of
  modifications against snapshots of the other base tables at exactly the
  view-incorporated state (avoiding the state bug), and folds the result
  into the view;
* :mod:`repro.ivm.maintainer` -- the runtime enforcing the response-time
  constraint with a pluggable scheduling policy (NAIVE / ADAPT / ONLINE or
  a precomputed plan), measuring *actual* engine cost per action;
* :mod:`repro.ivm.calibration` -- measures the batch cost functions
  ``f_i(k)`` from the live engine (the reproduction of Figures 1 and 4)
  and fits the analytic forms the planners consume.
"""

from repro.ivm.delta import DeltaTable
from repro.ivm.view import MaterializedView
from repro.ivm.maintenance import apply_batch, full_refresh
from repro.ivm.maintainer import MaintenanceLog, ViewMaintainer
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.ivm.calibration import CalibrationResult, measure_cost_function

__all__ = [
    "CalibrationResult",
    "DeltaTable",
    "MaintenanceCoordinator",
    "MaintenanceLog",
    "MaterializedView",
    "ViewConfig",
    "ViewMaintainer",
    "apply_batch",
    "full_refresh",
    "measure_cost_function",
]
