"""Measuring batch cost functions from the live engine.

The paper obtains its cost functions empirically: run the maintenance SQL
for batches of increasing size and record the time (Figures 1 and 4), then
feed the measured curves to the planners.  :func:`measure_cost_function`
is that procedure against our engine:

for each batch size ``k`` in the sweep:
    1. apply ``k`` modifications to the base table (caller-provided
       mutator, e.g. random ``supplycost`` updates);
    2. pull them into the view's delta table;
    3. process them as one batch inside a cost window;
    4. record ``(k, simulated_ms)``.

The result packages the raw samples, a
:class:`~repro.core.costfuncs.TabulatedCost` replaying them exactly, and a
:class:`~repro.core.costfuncs.LinearCost` least-squares fit (the paper
observes its curves "follow linear trends"; ours do too, by construction
of the physical operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.core.costfuncs import LinearCost, TabulatedCost, fit_linear
from repro.ivm.maintenance import apply_batch
from repro.ivm.view import MaterializedView


@dataclass
class CalibrationResult:
    """Measured cost curve for one (view, base table) pair."""

    alias: str
    samples: tuple[tuple[int, float], ...]
    tabulated: TabulatedCost
    linear_fit: LinearCost

    def max_relative_fit_error(self) -> float:
        """Largest relative deviation of the linear fit from the samples.

        A diagnostics number: small values justify handing the planners the
        linear model (and hence invoking Theorem 2's optimality).
        """
        worst = 0.0
        for k, measured in self.samples:
            if measured <= 0:
                continue
            predicted = self.linear_fit(k)
            worst = max(worst, abs(predicted - measured) / measured)
        return worst


def measure_cost_function(
    view: MaterializedView,
    alias: str,
    batch_sizes: Sequence[int],
    mutate: Callable[[int], None],
    repetitions: int = 1,
) -> CalibrationResult:
    """Measure ``f_alias(k)`` for each ``k`` in ``batch_sizes``.

    Parameters
    ----------
    view:
        The materialized view to maintain (its contents evolve during
        calibration; use a scratch copy of the database if that matters).
    alias:
        Which base table's modifications to measure.
    batch_sizes:
        The sweep, e.g. ``range(50, 1001, 50)``.  Zero entries are skipped
        (``f(0) = 0`` by definition).
    mutate:
        ``mutate(k)`` must apply exactly ``k`` modifications to the
        underlying base table (e.g. random updates from
        :mod:`repro.tpcr.updates`).
    repetitions:
        Measure each batch size this many times and average, smoothing the
        dependence on which random rows got modified.
    """
    if alias not in view.deltas:
        raise ValueError(f"view has no alias {alias!r}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    counter = view.database.counter
    samples: list[tuple[int, float]] = []
    with obs.trace("ivm.calibrate", alias=alias) as span:
        for k in batch_sizes:
            if k <= 0:
                continue
            total = 0.0
            for __ in range(repetitions):
                mutate(k)
                pulled = view.deltas[alias].pull()
                if pulled != k:
                    raise RuntimeError(
                        f"mutator applied {pulled} modifications, expected "
                        f"{k} (did it touch another table?)"
                    )
                with counter.window() as window:
                    apply_batch(view, alias, k)
                total += window.elapsed_ms
            samples.append((k, total / repetitions))
            obs.counter("ivm.calibration_samples")
        span.set(samples=len(samples))
    if len(samples) < 2:
        raise ValueError("need at least two non-zero batch sizes to calibrate")
    return CalibrationResult(
        alias=alias,
        samples=tuple(samples),
        tabulated=TabulatedCost(samples),
        linear_fit=fit_linear(samples),
    )
