"""Shared delta scans: one blocked ModLog pass per table per round.

A fleet of views over the same base table all window the same shared
:class:`~repro.engine.table.ModLog`; maintaining them view-at-a-time
re-reads (and re-charges) the same delta events once per view.  This
module is the table-at-a-time alternative the multi-view coordinator
uses: collect every view's requested delta window per table, merge the
overlapping windows into covering intervals, scan and split each
interval into deleted/inserted row batches **once** -- charging the
scan's ``tuple_cpu`` a single time, at the coordinator -- then hand each
view its slice wrapped in :class:`~repro.engine.operators.PrescannedRows`
so the per-view delta-joins skip the source-scan charge the shared scan
prepaid.

The scan also owns **no-op fingerprinting**: for a view whose
:meth:`~repro.ivm.view.MaterializedView.referenced_columns` over an
alias is known, a window consisting solely of update events whose old
and new rows agree on every referenced column provably leaves the view
unchanged (the derived insert and delete batches are identical multisets
over the columns the view consumes, so they cancel).  Fingerprints are
computed once per distinct ``(window, column signature)`` -- charged as
one ``compares`` per event at that point -- and shared across every view
with the same signature, so dimension churn does not cascade into
thousands of identical checks.

Cost attribution: everything charged here (interval split ``tuple_cpu``,
fingerprint ``compares``) is coordinator overhead, charged outside any
view's cost window; per-view join and fold work stays charged inside
each view's own window at the fan-out point, keeping the per-view ledger
and ``ivm.view.*`` metrics correct.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro import obs
from repro.engine.database import Database
from repro.engine.errors import ExecutionError
from repro.engine.operators import PrescannedRows
from repro.engine.table import Table

#: Scan granularity when the database runs in row mode (``block_size``
#: None); charges are block-size independent either way.
_DEFAULT_SCAN_BLOCK = 4096


@dataclass(frozen=True)
class SharedBatch:
    """One view's slice of a table's shared delta scan.

    ``deleted`` / ``inserted`` are the split row batches, pre-charged by
    the scan (:class:`PrescannedRows`); when ``suppressed`` is true the
    fingerprint proved the whole window a no-op for the requesting view
    and the row batches are empty -- the caller should advance the
    view's ``applied_lsn`` without running its delta-join.
    """

    deleted: PrescannedRows
    inserted: PrescannedRows
    events: int
    suppressed: bool


class _Interval:
    """One merged, scanned LSN interval of a table's delta window."""

    __slots__ = ("lo", "hi", "events", "old_rows", "new_rows", "upd_prefix")

    def __init__(self, lo: int, hi: int, events: list):
        self.lo = lo
        self.hi = hi
        self.events = events
        #: Per-event old/new row values (None where not applicable),
        #: aligned with ``events`` so any subwindow is a plain slice.
        self.old_rows: list[tuple | None] = []
        self.new_rows: list[tuple | None] = []
        #: ``upd_prefix[i]`` = number of update events among the first
        #: ``i`` -- an O(1) "is this subwindow all updates?" pre-screen.
        self.upd_prefix: list[int] = [0]


class _TableScan:
    """Scan state for one base table within one maintenance round."""

    def __init__(self, table: Table):
        self.table = table
        self.log = table.history
        self._requests: list[tuple[int, int]] = []
        #: (lo, hi, refcols) triples whose fingerprints :meth:`run`
        #: precomputes -- so the compare charges land in the
        #: coordinator's scan window, not the first subscriber's ledger.
        self._pending_prints: list[tuple[int, int, frozenset]] = []
        self._intervals: list[_Interval] = []
        self._starts: list[int] = []
        self._counter = None
        # Shared across subscribing views: assembled (lo, hi) row slices
        # and (lo, hi, signature) fingerprint verdicts.
        self._batches: dict[tuple[int, int], tuple[PrescannedRows, PrescannedRows]] = {}
        self._fingerprints: dict[tuple, bool] = {}
        self._positions: dict[frozenset, tuple[int, ...]] = {}

    def add_request(
        self, lo: int, hi: int, refcols: frozenset[str] | None = None
    ) -> None:
        self._requests.append((lo, hi))
        if refcols is not None:
            self._pending_prints.append((lo, hi, refcols))

    def run(self, counter, block_size: int) -> tuple[int, int]:
        """Scan the merged request intervals once; returns (events, rows).

        Charges ``tuple_cpu`` per split row -- exactly what one
        :class:`~repro.engine.operators.RowSource` pass over the same
        window would have charged -- once, regardless of how many views
        subscribe to the window.
        """
        self._counter = counter
        events_total = rows_total = 0
        for lo, hi in _merge_intervals(self._requests):
            interval = _Interval(lo, hi, self.log.window(lo, hi))
            old_append = interval.old_rows.append
            new_append = interval.new_rows.append
            prefix = interval.upd_prefix
            updates = 0
            events = interval.events
            for start in range(0, len(events), block_size):
                produced = 0
                for event in events[start : start + block_size]:
                    old_append(event.old_values)
                    new_append(event.new_values)
                    if event.old_values is not None:
                        produced += 1
                    if event.new_values is not None:
                        produced += 1
                    if event.kind == "update":
                        updates += 1
                    prefix.append(updates)
                if produced:
                    counter.charge("tuple_cpu", produced)
                rows_total += produced
            events_total += len(events)
            self._intervals.append(interval)
        self._intervals.sort(key=lambda iv: iv.lo)
        self._starts = [iv.lo for iv in self._intervals]
        for lo, hi, refcols in self._pending_prints:
            interval = self._containing(lo, hi)
            self._fingerprint(interval, lo - interval.lo, hi - interval.lo,
                              refcols)
        return events_total, rows_total

    def _containing(self, lo: int, hi: int) -> _Interval:
        index = bisect_right(self._starts, lo) - 1
        if index >= 0:
            interval = self._intervals[index]
            if interval.lo <= lo and hi <= interval.hi:
                return interval
        raise ExecutionError(
            f"window ({lo}, {hi}] of {self.table.name} was not requested "
            f"before the shared scan ran"
        )

    def batch(
        self, lo: int, hi: int, refcols: frozenset[str] | None
    ) -> SharedBatch:
        """The (lo, hi] slice, fingerprinted against ``refcols``."""
        interval = self._containing(lo, hi)
        a, b = lo - interval.lo, hi - interval.lo
        if refcols is not None and self._fingerprint(interval, a, b, refcols):
            return SharedBatch(
                deleted=PrescannedRows(),
                inserted=PrescannedRows(),
                events=b - a,
                suppressed=True,
            )
        cached = self._batches.get((lo, hi))
        if cached is None:
            deleted = PrescannedRows(
                row for row in interval.old_rows[a:b] if row is not None
            )
            inserted = PrescannedRows(
                row for row in interval.new_rows[a:b] if row is not None
            )
            cached = (deleted, inserted)
            self._batches[(lo, hi)] = cached
        return SharedBatch(
            deleted=cached[0],
            inserted=cached[1],
            events=b - a,
            suppressed=False,
        )

    def _fingerprint(
        self, interval: _Interval, a: int, b: int, refcols: frozenset[str]
    ) -> bool:
        """Whether events ``[a, b)`` of the interval are all no-op updates.

        A window containing any insert or delete can never be a no-op;
        that pre-screen is O(1) off the update-prefix counts and charges
        nothing.  The per-column comparison over all-update windows is
        computed (and its ``compares`` charged) once per distinct
        ``(window, signature)`` and memoized for every other view sharing
        the signature.
        """
        prefix = interval.upd_prefix
        if prefix[b] - prefix[a] != b - a:
            return False
        key = (interval.lo + a, interval.lo + b, refcols)
        verdict = self._fingerprints.get(key)
        if verdict is None:
            positions = self._positions.get(refcols)
            if positions is None:
                schema = self.table.schema
                positions = tuple(
                    sorted(schema.position(column) for column in refcols)
                )
                self._positions[refcols] = positions
            verdict = True
            for i in range(a, b):
                old = interval.old_rows[i]
                new = interval.new_rows[i]
                if any(old[p] != new[p] for p in positions):
                    verdict = False
                    break
            if self._counter is not None and b > a:
                self._counter.charge("compares", b - a)
            self._fingerprints[key] = verdict
        return verdict


def _merge_intervals(requests: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Overlapping/adjacent (lo, hi] windows merged into covering spans.

    Only requested LSNs are covered -- a hole nobody asked for is neither
    scanned nor charged.
    """
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(requests):
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


class SharedScanRound:
    """One maintenance round's shared delta scans, across all tables.

    Protocol (driven by the coordinator): every view's planned windows
    are :meth:`request`-ed first, :meth:`run` scans each table once, then
    each view's executor pulls its :meth:`batch_for` slices.
    """

    def __init__(self, database: Database):
        self.database = database
        self._scans: dict[str, _TableScan] = {}
        self._ran = False

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the tables with at least one requested window."""
        return tuple(sorted(self._scans))

    def request(
        self, delta, k: int, refcols: frozenset[str] | None = None
    ) -> None:
        """Register one view's planned window of ``k`` events on a delta.

        ``refcols`` is the requesting view's column signature
        (:meth:`~repro.ivm.view.MaterializedView.referenced_columns`);
        passing it lets :meth:`run` precompute the window's no-op
        fingerprint inside the coordinator's cost window, keeping the
        compare charges out of every view's ledger.
        """
        if k <= 0:
            return
        if self._ran:
            raise ExecutionError("shared scan already ran; requests closed")
        if k > delta.size:
            raise ExecutionError(
                f"requested {k} events from {delta.table.name} but only "
                f"{delta.size} pending"
            )
        scan = self._scans.get(delta.table.name)
        if scan is None:
            scan = _TableScan(delta.table)
            self._scans[delta.table.name] = scan
        scan.add_request(delta.applied_lsn, delta.applied_lsn + k, refcols)

    def run(self) -> int:
        """Scan every requested table once; returns the table count.

        Charges land on the database's shared counter (the caller decides
        whether to meter them in a window); ``ivm.coordinator.scan.*``
        counters record the scan volume.
        """
        if self._ran:
            raise ExecutionError("shared scan already ran")
        self._ran = True
        counter = self.database.counter
        block_size = self.database.block_size or _DEFAULT_SCAN_BLOCK
        events_total = rows_total = 0
        for scan in self._scans.values():
            events, rows = scan.run(counter, block_size)
            events_total += events
            rows_total += rows
        if self._scans:
            obs.counter("ivm.coordinator.scan.tables", len(self._scans))
        if events_total:
            obs.counter("ivm.coordinator.scan.events", events_total)
        if rows_total:
            obs.counter("ivm.coordinator.scan.rows", rows_total)
        return len(self._scans)

    def batch_for(self, view, alias: str, k: int) -> SharedBatch:
        """The pre-scanned batch for one view's planned flush."""
        if not self._ran:
            raise ExecutionError("shared scan has not run yet")
        delta = view.deltas[alias]
        scan = self._scans.get(delta.table.name)
        if scan is None:
            raise ExecutionError(
                f"no shared scan covers {delta.table.name}; the window "
                f"was never requested"
            )
        return scan.batch(
            delta.applied_lsn,
            delta.applied_lsn + k,
            view.referenced_columns(alias),
        )

    def __repr__(self) -> str:
        state = "ran" if self._ran else "pending"
        return f"SharedScanRound(tables={list(self._scans)}, {state})"
