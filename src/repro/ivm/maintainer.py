"""The view-maintenance runtime: policies driving a live view.

:class:`ViewMaintainer` is the "actual system" of the paper's Figure 5
validation experiment.  Where :func:`repro.core.simulator.simulate_policy`
*computes* plan cost from calibrated cost functions, the maintainer
*executes* the plan against the live engine and measures real (simulated-
clock) cost per action.  Comparing the two is exactly the paper's
simulation-validation methodology.

Usage sketch::

    maintainer = ViewMaintainer(view, cost_functions, limit=C, policy=OnlinePolicy())
    for t, modifications in enumerate(stream):
        apply_modifications_to_base_tables(modifications)
        maintainer.step(t)          # pulls deltas, consults the policy, acts
    maintainer.refresh(final=True)  # forced view refresh

The maintainer enforces the response-time constraint with the *calibrated*
cost functions (the planner's world model); the log records both the
predicted cost of every action and the engine-measured actual cost, so
their divergence is observable (Figure 5 plots it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.obs import attrib, decisions, slo
from repro.obs import calibration as obs_calibration
from repro.core.costfuncs import CostFunction
from repro.core.policies import Policy, PolicyError
from repro.ivm.ledger import RoundEntry, ViewLedger
from repro.ivm.maintenance import apply_batch, full_refresh
from repro.ivm.view import MaterializedView


@dataclass
class StepRecord:
    """What happened at one time step."""

    t: int
    arrivals: tuple[int, ...]
    pre_state: tuple[int, ...]
    action: tuple[int, ...]
    predicted_cost: float
    actual_cost_ms: float


@dataclass
class MaintenanceLog:
    """The full run record: per-step entries plus summary statistics."""

    aliases: tuple[str, ...]
    steps: list[StepRecord] = field(default_factory=list)

    @property
    def total_predicted_cost(self) -> float:
        """Sum of cost-function-predicted action costs (simulation view)."""
        return sum(s.predicted_cost for s in self.steps)

    @property
    def total_actual_cost_ms(self) -> float:
        """Sum of engine-measured action costs (live-system view)."""
        return sum(s.actual_cost_ms for s in self.steps)

    @property
    def action_count(self) -> int:
        """Number of steps with a non-zero action."""
        return sum(1 for s in self.steps if any(s.action))

    def actions_plan(self) -> list[tuple[int, ...]]:
        """The executed action sequence (comparable to a core ``Plan``)."""
        return [s.action for s in self.steps]


class ViewMaintainer:
    """Drives a live materialized view under a response-time constraint."""

    def __init__(
        self,
        view: MaterializedView,
        cost_functions: Sequence[CostFunction],
        limit: float,
        policy: Policy,
        verify: bool = False,
        scheduled_aliases: Sequence[str] | None = None,
    ):
        self.view = view
        # The scheduling state vector covers only the tables that receive
        # modifications (the paper's experiments schedule over PartSupp and
        # Supplier; Nation and Region are static).  Unscheduled tables must
        # stay modification-free, which _execute asserts.
        self.aliases = (
            tuple(scheduled_aliases)
            if scheduled_aliases is not None
            else view.spec.aliases
        )
        unknown = set(self.aliases) - set(view.spec.aliases)
        if unknown:
            raise ValueError(
                f"scheduled aliases {sorted(unknown)} not in view "
                f"{view.spec.aliases}"
            )
        if len(cost_functions) != len(self.aliases):
            raise ValueError(
                f"need one cost function per scheduled alias "
                f"{self.aliases}, got {len(cost_functions)}"
            )
        self.cost_functions = tuple(cost_functions)
        self.limit = float(limit)
        self.policy = policy
        self.verify = verify
        self.policy.reset(self.cost_functions, self.limit)
        self.log = MaintenanceLog(aliases=self.aliases)
        self.ledger = ViewLedger(view=view.name, aliases=self.aliases)
        self._clock = -1

    # ------------------------------------------------------------------

    def pre_state(self) -> tuple[int, ...]:
        """Current per-alias pending counts (after a pull)."""
        return tuple(self.view.deltas[a].size for a in self.aliases)

    def set_policy(self, policy: Policy) -> Policy:
        """Swap the scheduling policy mid-run; returns the previous one.

        The actuation path of the adaptive control layer
        (:mod:`repro.control`): the incoming policy is reset against
        this view's cost functions and limit, so estimator state starts
        fresh while the backlog and the view itself carry over
        untouched.  Safe between rounds (plan/execute pairs must not be
        split across a swap).
        """
        previous = self.policy
        self.policy = policy
        policy.reset(self.cost_functions, self.limit)
        return previous

    def predicted_refresh_cost(self, state: Sequence[int]) -> float:
        """``f(s)`` under the calibrated cost functions."""
        return sum(
            f(k) for f, k in zip(self.cost_functions, state, strict=True)
        )

    def step(self, t: int | None = None) -> StepRecord:
        """Run one time step: ingest new modifications, consult the policy.

        Call after applying the step's base-table modifications.  Raises
        :class:`~repro.core.policies.PolicyError` when the policy's action
        leaves a full post-action state (constraint violation).
        """
        return self.execute_planned(*self.plan_step(t))

    def refresh(self, t: int | None = None) -> StepRecord:
        """Force the view up to date (the paper's refresh request)."""
        return self.execute_planned(*self.plan_refresh(t), forced=True)

    def plan_step(
        self, t: int | None = None
    ) -> tuple[int, tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        """The ingest-and-decide half of :meth:`step`, without executing.

        Returns ``(t, arrivals, pre_state, action)`` for
        :meth:`execute_planned`.  The multi-view coordinator plans every
        view first so one shared scan per table can cover all the planned
        windows, then executes.
        """
        self._clock = self._clock + 1 if t is None else t
        t = self._clock
        arrivals = self._pull_all()
        self.policy.observe(t, arrivals)
        pre = self.pre_state()
        # Decisions emitted by the policy are tagged with the owning view
        # so execute_planned can join them with the round's actual cost.
        with decisions.scope(view=self.view.name):
            action = tuple(int(x) for x in self.policy.decide(t, pre))
        return t, arrivals, pre, action

    def plan_refresh(
        self, t: int | None = None
    ) -> tuple[int, tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        """Like :meth:`plan_step`, but the action flushes everything."""
        self._clock = self._clock + 1 if t is None else t
        t = self._clock
        arrivals = self._pull_all()
        self.policy.observe(t, arrivals)
        pre = self.pre_state()
        return t, arrivals, pre, pre

    def _pull_all(self) -> tuple[int, ...]:
        """Ingest new modifications on every base table; return the
        scheduled-alias arrival counts."""
        counts = {
            alias: self.view.deltas[alias].pull()
            for alias in self.view.spec.aliases
        }
        return tuple(counts[alias] for alias in self.aliases)

    # ------------------------------------------------------------------

    def execute_planned(
        self,
        t: int,
        arrivals: tuple[int, ...],
        pre: tuple[int, ...],
        action: tuple[int, ...],
        forced: bool = False,
        shared=None,
    ) -> StepRecord:
        """Execute one planned round (the second half of :meth:`step`).

        ``shared`` is an already-run
        :class:`~repro.ivm.sharedscan.SharedScanRound` covering this
        round's planned windows; when given, per-alias flushes consume
        its pre-scanned batches (and skip fingerprint-suppressed no-op
        windows entirely) instead of re-reading the mod log.
        """
        for alias in self.view.spec.aliases:
            if alias not in self.aliases and self.view.deltas[alias].size:
                raise PolicyError(
                    f"unscheduled base table {alias!r} received "
                    f"modifications; add it to scheduled_aliases"
                )
        if any(a < 0 or a > s for a, s in zip(action, pre)):
            raise PolicyError(
                f"{self.policy!r} at t={t}: action {action} exceeds "
                f"backlog {pre}"
            )
        post = tuple(s - a for s, a in zip(pre, action))
        if not forced and self.predicted_refresh_cost(post) > self.limit + 1e-9:
            raise PolicyError(
                f"{self.policy!r} at t={t}: post-action state {post} "
                f"violates C={self.limit}"
            )
        recorder = obs.get_recorder()
        if recorder is not None or slo.hub_active():
            # The same quantity the simulator's trace scores: the margin
            # of the post-arrival, pre-action state.  A backlog the
            # policy let ride into the near-breach band (or a burst that
            # blew past C before the policy could act) surfaces here as
            # slo.* metrics and alert-hub events -- the feedback signal
            # the control layer's policy governor consumes.  Purely
            # observational: cost functions are evaluated, nothing is
            # charged.
            slo.observe_refresh(
                self.limit,
                self.predicted_refresh_cost(pre),
                t=t,
                source=f"ivm:{self.view.name}",
            )
        predicted = self.predicted_refresh_cost(action)
        counter = self.view.database.counter
        if not any(action):
            # Zero-work round: nothing to flush, so skip the cost window,
            # wall timer, attribution context, and span machinery -- at
            # fleet scale most rounds are idle and this path is what keeps
            # them cheap.  The ledger entry and per-view metric series are
            # still emitted (with zero values) so observability stays
            # gap-free.
            entry = RoundEntry(
                t=t,
                arrivals=arrivals,
                pre_state=pre,
                action=action,
                forced=forced,
                predicted_ms=predicted,
                sim_ms=0.0,
                wall_ms=0.0,
                backlog=sum(post),
                charges={},
            )
            self.ledger.record(entry)
            if recorder is not None:
                vid = self.ledger.metric_id
                recorder.counter(f"ivm.view.{vid}.rounds")
                recorder.counter(f"ivm.view.{vid}.flushes", 0)
                recorder.counter(f"ivm.view.{vid}.mods_applied", 0)
                recorder.counter(f"ivm.view.{vid}.cost_ms", 0.0)
                recorder.gauge(f"ivm.view.{vid}.backlog", entry.backlog)
                recorder.observe(f"ivm.view.{vid}.round_ms", 0.0)
                if not any(pre):
                    recorder.counter("ivm.skip.empty")
            self.policy.record_action(t, action, predicted)
            log = decisions.get_decision_log()
            if log is not None:
                log.join(self.view.name, t, actual_ms=0.0)
            record = StepRecord(
                t=t,
                arrivals=arrivals,
                pre_state=pre,
                action=action,
                predicted_cost=predicted,
                actual_cost_ms=0.0,
            )
            self.log.steps.append(record)
            if self.verify:
                self._verify_consistency()
            return record
        charges_before = counter.snapshot()
        calibrating = obs_calibration.enabled()
        flush_actual: dict[str, float] = {}
        wall_start = time.perf_counter()
        with counter.window() as window:
            # Any query profile captured while flushing carries the view
            # name and round, so EXPLAIN ANALYZE output and profile sinks
            # can attribute maintenance work to its owner.
            with attrib.maintenance_context(self.view.name, t):
                for alias, k, f in zip(
                    self.aliases, action, self.cost_functions
                ):
                    if not k:
                        continue
                    batch = None
                    if shared is not None:
                        batch = shared.batch_for(self.view, alias, k)
                        if batch.suppressed:
                            # The fingerprint proved every event in the
                            # window a no-op for this view: advance the
                            # delta without touching the join pipeline.
                            self.view.deltas[alias].take(k)
                            if recorder is not None:
                                recorder.counter("ivm.skip.fingerprint")
                            continue
                    if recorder is None and not calibrating:
                        apply_batch(self.view, alias, k, batch=batch)
                        continue
                    # Per-alias flush: record batch size k against both the
                    # model's prediction f_i(k) and the engine-measured cost
                    # -- the exact quantity the paper's cost functions model.
                    with counter.window() as flush_window:
                        with obs.trace(
                            "ivm.flush", alias=alias, k=k, forced=forced
                        ) as span:
                            apply_batch(self.view, alias, k, batch=batch)
                        span.set(sim_ms=flush_window.elapsed_ms)
                    flush_actual[alias] = flush_window.elapsed_ms
                    if calibrating:
                        obs_calibration.observe_flush(
                            self.view.name, t, alias, k,
                            f(k), flush_window.elapsed_ms,
                        )
                    if recorder is not None:
                        recorder.counter("ivm.flushes")
                        recorder.observe("ivm.flush.batch_size", k)
                        recorder.observe("ivm.flush.predicted_ms", f(k))
                        recorder.observe(
                            "ivm.flush.actual_ms", flush_window.elapsed_ms
                        )
        wall_ms = (time.perf_counter() - wall_start) * 1e3
        charges_after = counter.snapshot()
        entry = RoundEntry(
            t=t,
            arrivals=arrivals,
            pre_state=pre,
            action=action,
            forced=forced,
            predicted_ms=predicted,
            sim_ms=window.elapsed_ms,
            wall_ms=wall_ms,
            backlog=sum(post),
            charges={
                f: charges_after[f] - charges_before[f]
                for f in charges_after
                if charges_after[f] != charges_before[f]
            },
        )
        self.ledger.record(entry)
        if recorder is not None:
            vid = self.ledger.metric_id
            recorder.counter(f"ivm.view.{vid}.rounds")
            recorder.counter(f"ivm.view.{vid}.flushes", entry.flushes)
            recorder.counter(f"ivm.view.{vid}.mods_applied", entry.mods_applied)
            recorder.counter(f"ivm.view.{vid}.cost_ms", window.elapsed_ms)
            recorder.gauge(f"ivm.view.{vid}.backlog", entry.backlog)
            recorder.observe(f"ivm.view.{vid}.round_ms", window.elapsed_ms)
        self.policy.record_action(t, action, predicted)
        log = decisions.get_decision_log()
        if log is not None:
            log.join(
                self.view.name, t,
                actual_ms=window.elapsed_ms,
                table_ms=flush_actual,
                charges=dict(entry.charges),
            )
        record = StepRecord(
            t=t,
            arrivals=arrivals,
            pre_state=pre,
            action=action,
            predicted_cost=predicted,
            actual_cost_ms=window.elapsed_ms,
        )
        self.log.steps.append(record)
        if self.verify:
            self._verify_consistency()
        return record

    def _verify_consistency(self) -> None:
        expected = self.view.recompute()
        actual = self.view.contents()
        if expected != actual:
            raise AssertionError(
                f"view {self.view.name!r} diverged from recomputation: "
                f"expected {expected!r}, got {actual!r}"
            )

    def __repr__(self) -> str:
        return (
            f"ViewMaintainer({self.view.name!r}, policy={self.policy!r}, "
            f"C={self.limit})"
        )
