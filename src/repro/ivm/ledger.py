"""Per-view maintenance ledger: who spent what, when, and on which view.

The maintenance log (:class:`repro.ivm.maintainer.MaintenanceLog`) records
*decisions* -- arrivals, actions, predicted vs. actual cost.  The ledger
recorded here answers the complementary accounting question: for each
view, per maintenance round, where did the simulated cost actually go --
how much of it was join work (index probes / hash build+probe), how much
aggregate upkeep, how many modifications were flushed, and what backlog
was left behind.

Ledgers are always on (like the log): entries are tiny fixed-size records
appended once per round, so there is nothing to toggle.  Metric export
(``ivm.view.*``) stays gated on an installed recorder as usual.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.engine.costmodel import CostModel, OperationCounter

#: Counter fields whose weighted cost we attribute to join work.
JOIN_FIELDS = ("index_probes", "hash_builds", "hash_probes")
#: Counter fields whose weighted cost we attribute to aggregate upkeep.
AGG_FIELDS = ("agg_updates", "sort_items")


def _weighted_ms(charges: Mapping[str, int], model: CostModel, fields) -> float:
    total = 0.0
    for f in fields:
        count = charges.get(f, 0)
        if count:
            total += count * getattr(model, OperationCounter._WEIGHT_BY_FIELD[f])
    return total


@dataclass(frozen=True)
class RoundEntry:
    """One maintenance round of one view, fully costed."""

    t: int
    arrivals: tuple[int, ...]
    pre_state: tuple[int, ...]
    action: tuple[int, ...]
    forced: bool
    predicted_ms: float
    sim_ms: float
    wall_ms: float
    backlog: int
    #: Non-zero counter-field deltas charged during this round.
    charges: dict[str, int]

    @property
    def mods_applied(self) -> int:
        return sum(self.action)

    @property
    def flushes(self) -> int:
        return sum(1 for k in self.action if k)


@dataclass
class ViewLedger:
    """Cumulative, per-round maintenance accounting for one view."""

    view: str
    aliases: tuple[str, ...]
    entries: list[RoundEntry] = field(default_factory=list)

    @property
    def metric_id(self) -> str:
        """View name sanitized for use inside a dotted metric name."""
        return re.sub(r"[^A-Za-z0-9_-]", "_", self.view)

    def record(self, entry: RoundEntry) -> None:
        self.entries.append(entry)

    # -- cumulative views ------------------------------------------------

    @property
    def rounds(self) -> int:
        return len(self.entries)

    @property
    def flushes(self) -> int:
        return sum(e.flushes for e in self.entries)

    @property
    def total_mods(self) -> int:
        return sum(e.mods_applied for e in self.entries)

    @property
    def total_sim_ms(self) -> float:
        return sum(e.sim_ms for e in self.entries)

    @property
    def total_wall_ms(self) -> float:
        return sum(e.wall_ms for e in self.entries)

    @property
    def backlog(self) -> int:
        """Backlog left after the most recent round (0 when no rounds)."""
        return self.entries[-1].backlog if self.entries else 0

    def charge_totals(self) -> dict[str, int]:
        """Counter-field deltas summed over all rounds."""
        totals: dict[str, int] = {}
        for e in self.entries:
            for f, count in e.charges.items():
                totals[f] = totals.get(f, 0) + count
        return totals

    def join_ms(self, model: CostModel) -> float:
        """Simulated cost of join work (probes + hash build/probe)."""
        return _weighted_ms(self.charge_totals(), model, JOIN_FIELDS)

    def agg_ms(self, model: CostModel) -> float:
        """Simulated cost of aggregate upkeep (updates + recomputes)."""
        return _weighted_ms(self.charge_totals(), model, AGG_FIELDS)

    def summary(self, model: CostModel) -> dict:
        """One flat dict per view -- the row behind :func:`ledger_summary`."""
        return {
            "view": self.view,
            "rounds": self.rounds,
            "flushes": self.flushes,
            "mods": self.total_mods,
            "sim_ms": self.total_sim_ms,
            "wall_ms": self.total_wall_ms,
            "join_ms": self.join_ms(model),
            "agg_ms": self.agg_ms(model),
            "backlog": self.backlog,
        }


#: Row cap for rendered ledger tables; at fleet scale a thousand-row dump
#: helps nobody, so the costliest views lead and the rest aggregate.
DEFAULT_SUMMARY_LIMIT = 50


def ledger_summary(
    ledgers: Iterable[ViewLedger],
    model: CostModel,
    limit: int | None = DEFAULT_SUMMARY_LIMIT,
) -> str:
    """Fixed-width per-view cost table (companion to ``slo_summary``).

    Rows are always ordered by simulated cost (descending), ties broken
    by view id (ascending) -- equal-cost views render identically no
    matter what order they were registered in.  Above ``limit`` rows the
    ``limit`` costliest views lead and one aggregate row sums the
    remainder; ``limit=None`` renders everything.
    """
    rows = [ledger.summary(model) for ledger in ledgers]
    rows.sort(key=lambda r: (-r["sim_ms"], r["view"]))
    remainder = None
    if limit is not None and len(rows) > limit:
        rest = rows[limit:]
        rows = rows[:limit]
        remainder = {
            "view": f"(+{len(rest)} more views)",
            "rounds": sum(r["rounds"] for r in rest),
            "flushes": sum(r["flushes"] for r in rest),
            "mods": sum(r["mods"] for r in rest),
            "sim_ms": sum(r["sim_ms"] for r in rest),
            "join_ms": sum(r["join_ms"] for r in rest),
            "agg_ms": sum(r["agg_ms"] for r in rest),
            "backlog": sum(r["backlog"] for r in rest),
        }
        rows.append(remainder)
    width = max([14] + [len(r["view"]) for r in rows])
    lines = [
        f"{'view':<{width}s} {'rounds':>7s} {'flushes':>8s} {'mods':>8s} "
        f"{'sim ms':>10s} {'join ms':>10s} {'agg ms':>10s} {'backlog':>8s}"
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            f"{r['view']:<{width}s} {r['rounds']:>7d} {r['flushes']:>8d} "
            f"{r['mods']:>8d} {r['sim_ms']:>10.3f} {r['join_ms']:>10.3f} "
            f"{r['agg_ms']:>10.3f} {r['backlog']:>8d}"
        )
    if not rows:
        lines.append("(no views)")
    return "\n".join(lines)
