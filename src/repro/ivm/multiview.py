"""Coordinated maintenance of multiple views over shared base tables.

The paper's related work (Colby et al., "Supporting multiple view
maintenance policies") studies warehouses where different summary tables
are maintained under different policies.  That concern is orthogonal to
the paper's per-view asymmetric scheduling -- which is exactly why the two
compose: this module hosts any number of materialized views over one
database, each with its **own** scheduling policy and response-time
constraint, advancing them under a single shared clock.

Delta tables are per-view (two views at different staleness read the same
base table at different LSNs -- the MVCC substrate makes that free), but
maintenance rounds are **table-at-a-time**: one ``step()`` plans every
view first (pull deltas, consult policies), then runs one shared blocked
scan per base table covering all the planned delta windows
(:mod:`repro.ivm.sharedscan`), and fans the pre-scanned batches out to
each subscriber's delta-join.  The scan's cost is charged once at the
coordinator instead of once per view, which is where the fleet-scale
economics come from; per-view join and fold work stays charged inside
each view's own cost window at the fan-out point, so the per-view ledger
and ``ivm.view.*`` metrics are unchanged.  Construct with
``shared_scans=False`` (or pass ``shared=False`` per call) for the old
view-at-a-time rounds -- contents are identical either way.

After each round the coordinator asks every touched
:class:`~repro.engine.table.ModLog` to truncate history all subscribing
views have incorporated, so a long-running fleet does not accumulate an
unbounded modification log.

For notification-driven refresh semantics on top of the same machinery,
see :mod:`repro.pubsub`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro import obs
from repro.core.costfuncs import CostFunction
from repro.core.policies import Policy
from repro.engine.database import Database
from repro.engine.query import QuerySpec
from repro.ivm.ledger import DEFAULT_SUMMARY_LIMIT, ViewLedger
from repro.ivm.ledger import ledger_summary as _render_ledger_summary
from repro.ivm.maintainer import StepRecord, ViewMaintainer
from repro.ivm.sharedscan import SharedScanRound
from repro.ivm.view import MaterializedView


@dataclass(frozen=True)
class ViewConfig:
    """Registration record for one coordinated view."""

    name: str
    query: QuerySpec
    policy: Policy
    cost_functions: Sequence[CostFunction]
    limit: float
    scheduled_aliases: tuple[str, ...] | None = None


class MaintenanceCoordinator:
    """Hosts several independently scheduled views over one database."""

    def __init__(self, database: Database, shared_scans: bool = True):
        self.database = database
        #: Default round mode; ``step``/``refresh`` accept a per-call
        #: override.  Shared and independent rounds produce identical view
        #: contents -- only scan-cost attribution (and the fingerprint
        #: no-op suppression, shared mode only) differ.
        self.shared_scans = shared_scans
        self._maintainers: dict[str, ViewMaintainer] = {}
        self._clock = -1

    def add_view(self, config: ViewConfig) -> MaterializedView:
        """Materialize and register a view; returns it."""
        if config.name in self._maintainers:
            raise ValueError(f"view {config.name!r} already registered")
        view = MaterializedView(config.name, self.database, config.query)
        self._maintainers[config.name] = ViewMaintainer(
            view,
            config.cost_functions,
            limit=config.limit,
            policy=config.policy,
            scheduled_aliases=config.scheduled_aliases,
        )
        return view

    def remove_view(self, name: str) -> None:
        """Drop a registered view, releasing everything it held.

        The view's delta subscriptions on the shared mod logs are closed
        (letting the logs truncate history only this view still pinned),
        and its ``ivm.view.<id>.*`` metric series are removed from the
        installed recorder so dashboards over a churning fleet do not
        accumulate dead series.  The maintainer object itself (ledger
        included) is dropped; callers wanting a post-mortem should grab
        :meth:`maintainer` first.
        """
        maintainer = self._maintainers.pop(name, None)
        if maintainer is None:
            raise KeyError(f"no view {name!r}")
        view = maintainer.view
        logs = {id(d.log): d.log for d in view.deltas.values()}
        view.close()
        dropped = sum(log.truncate() for log in logs.values())
        recorder = obs.get_recorder()
        if recorder is not None:
            if dropped:
                recorder.counter("ivm.coordinator.log_truncated", dropped)
            recorder.registry.remove_prefix(
                f"ivm.view.{maintainer.ledger.metric_id}."
            )

    @property
    def views(self) -> tuple[str, ...]:
        """Registered view names."""
        return tuple(self._maintainers)

    def maintainer(self, name: str) -> ViewMaintainer:
        """The maintainer driving one view."""
        try:
            return self._maintainers[name]
        except KeyError:
            raise KeyError(f"no view {name!r}") from None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def step(
        self, t: int | None = None, shared: bool | None = None
    ) -> dict[str, StepRecord]:
        """Advance every view one time step; returns per-view records.

        Call after applying the step's base-table modifications.  With
        shared scans (the default) the round is table-at-a-time: every
        view's planned window is collected first, each base table's delta
        log is scanned once for all of them, and the batches fan out.
        """
        self._clock = self._clock + 1 if t is None else t
        if not (self.shared_scans if shared is None else shared):
            return {
                name: maintainer.step(self._clock)
                for name, maintainer in self._maintainers.items()
            }
        plans = {
            name: maintainer.plan_step(self._clock)
            for name, maintainer in self._maintainers.items()
        }
        return self._execute_shared(plans, forced=False)

    def refresh(
        self,
        names: Sequence[str] | None = None,
        t: int | None = None,
        shared: bool | None = None,
    ) -> dict[str, StepRecord]:
        """Force the named views (default: all) fully up to date."""
        self._clock = self._clock + 1 if t is None else t
        targets = tuple(names) if names is not None else self.views
        if not (self.shared_scans if shared is None else shared):
            records = {}
            for name in targets:
                records[name] = self.maintainer(name).refresh(self._clock)
            return records
        plans = {
            name: self.maintainer(name).plan_refresh(self._clock)
            for name in targets
        }
        return self._execute_shared(plans, forced=True)

    def _execute_shared(
        self, plans: dict, forced: bool
    ) -> dict[str, StepRecord]:
        """Run one table-at-a-time round over already-planned views.

        The shared scan's own cost (one blocked pass per table, plus any
        fingerprint comparisons) is metered in its own window and charged
        to the coordinator -- it appears in ``ivm.coordinator.scan_ms``,
        not in any view's ledger.  Each view's delta-join then runs inside
        that view's own cost window exactly as in independent rounds.
        """
        round_ = SharedScanRound(self.database)
        for name, (_, _, _, action) in plans.items():
            maintainer = self._maintainers[name]
            for alias, k in zip(maintainer.aliases, action):
                if k:
                    round_.request(
                        maintainer.view.deltas[alias],
                        k,
                        maintainer.view.referenced_columns(alias),
                    )
        with self.database.counter.window() as window:
            round_.run()
        obs.counter("ivm.coordinator.rounds")
        obs.observe("ivm.coordinator.scan_ms", window.elapsed_ms)
        records = {}
        for name, (t, arrivals, pre, action) in plans.items():
            records[name] = self._maintainers[name].execute_planned(
                t, arrivals, pre, action, forced=forced, shared=round_
            )
        self._truncate_logs()
        return records

    def _truncate_logs(self) -> None:
        """Reclaim mod-log history every subscribing view has applied."""
        logs = {
            id(d.log): d.log
            for m in self._maintainers.values()
            for d in m.view.deltas.values()
        }
        dropped = sum(log.truncate() for log in logs.values())
        if dropped:
            obs.counter("ivm.coordinator.log_truncated", dropped)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def total_cost_ms(self) -> float:
        """Engine-measured maintenance cost summed over all views."""
        return sum(
            m.log.total_actual_cost_ms for m in self._maintainers.values()
        )

    def cost_breakdown(self) -> dict[str, float]:
        """Per-view engine-measured maintenance cost."""
        return {
            name: m.log.total_actual_cost_ms
            for name, m in self._maintainers.items()
        }

    def iter_maintainers(self) -> Iterator[tuple[str, ViewMaintainer]]:
        """(name, maintainer) pairs."""
        yield from self._maintainers.items()

    def ledgers(self) -> dict[str, ViewLedger]:
        """Per-view maintenance ledgers, keyed by view name."""
        return {name: m.ledger for name, m in self._maintainers.items()}

    def ledger_snapshot(self) -> dict[str, dict]:
        """Per-view cumulative cost summaries (JSON-friendly)."""
        model = self.database.counter.model
        return {
            name: m.ledger.summary(model)
            for name, m in self._maintainers.items()
        }

    def ledger_summary(self, limit: int | None = DEFAULT_SUMMARY_LIMIT) -> str:
        """Fixed-width per-view cost table (companion to ``slo_summary``).

        Rows are ordered by simulated cost (descending, ties by view id)
        so the output is deterministic regardless of registration order.
        At fleet scale the table is capped at ``limit`` rows (with an
        aggregate row for the remainder); pass ``limit=None`` for the
        full table.
        """
        return _render_ledger_summary(
            (m.ledger for m in self._maintainers.values()),
            self.database.counter.model,
            limit=limit,
        )

    def __repr__(self) -> str:
        return f"MaintenanceCoordinator(views={list(self._maintainers)})"
