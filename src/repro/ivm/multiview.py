"""Coordinated maintenance of multiple views over shared base tables.

The paper's related work (Colby et al., "Supporting multiple view
maintenance policies") studies warehouses where different summary tables
are maintained under different policies.  That concern is orthogonal to
the paper's per-view asymmetric scheduling -- which is exactly why the two
compose: this module hosts any number of materialized views over one
database, each with its **own** scheduling policy and response-time
constraint, advancing them under a single shared clock.

Delta tables are per-view (two views at different staleness read the same
base table at different LSNs -- the MVCC substrate makes that free), so
the coordinator's job is bookkeeping: one ``step()`` pulls every view's
deltas, consults every policy, and aggregates cost accounting.

For notification-driven refresh semantics on top of the same machinery,
see :mod:`repro.pubsub`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.costfuncs import CostFunction
from repro.core.policies import Policy
from repro.engine.database import Database
from repro.engine.query import QuerySpec
from repro.ivm.ledger import ViewLedger
from repro.ivm.ledger import ledger_summary as _render_ledger_summary
from repro.ivm.maintainer import StepRecord, ViewMaintainer
from repro.ivm.view import MaterializedView


@dataclass(frozen=True)
class ViewConfig:
    """Registration record for one coordinated view."""

    name: str
    query: QuerySpec
    policy: Policy
    cost_functions: Sequence[CostFunction]
    limit: float
    scheduled_aliases: tuple[str, ...] | None = None


class MaintenanceCoordinator:
    """Hosts several independently scheduled views over one database."""

    def __init__(self, database: Database):
        self.database = database
        self._maintainers: dict[str, ViewMaintainer] = {}
        self._clock = -1

    def add_view(self, config: ViewConfig) -> MaterializedView:
        """Materialize and register a view; returns it."""
        if config.name in self._maintainers:
            raise ValueError(f"view {config.name!r} already registered")
        view = MaterializedView(config.name, self.database, config.query)
        self._maintainers[config.name] = ViewMaintainer(
            view,
            config.cost_functions,
            limit=config.limit,
            policy=config.policy,
            scheduled_aliases=config.scheduled_aliases,
        )
        return view

    def remove_view(self, name: str) -> None:
        """Drop a registered view."""
        if name not in self._maintainers:
            raise KeyError(f"no view {name!r}")
        del self._maintainers[name]

    @property
    def views(self) -> tuple[str, ...]:
        """Registered view names."""
        return tuple(self._maintainers)

    def maintainer(self, name: str) -> ViewMaintainer:
        """The maintainer driving one view."""
        try:
            return self._maintainers[name]
        except KeyError:
            raise KeyError(f"no view {name!r}") from None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def step(self, t: int | None = None) -> dict[str, StepRecord]:
        """Advance every view one time step; returns per-view records.

        Call after applying the step's base-table modifications.
        """
        self._clock = self._clock + 1 if t is None else t
        return {
            name: maintainer.step(self._clock)
            for name, maintainer in self._maintainers.items()
        }

    def refresh(
        self, names: Sequence[str] | None = None, t: int | None = None
    ) -> dict[str, StepRecord]:
        """Force the named views (default: all) fully up to date."""
        self._clock = self._clock + 1 if t is None else t
        targets = tuple(names) if names is not None else self.views
        records = {}
        for name in targets:
            records[name] = self.maintainer(name).refresh(self._clock)
        return records

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def total_cost_ms(self) -> float:
        """Engine-measured maintenance cost summed over all views."""
        return sum(
            m.log.total_actual_cost_ms for m in self._maintainers.values()
        )

    def cost_breakdown(self) -> dict[str, float]:
        """Per-view engine-measured maintenance cost."""
        return {
            name: m.log.total_actual_cost_ms
            for name, m in self._maintainers.items()
        }

    def iter_maintainers(self) -> Iterator[tuple[str, ViewMaintainer]]:
        """(name, maintainer) pairs."""
        yield from self._maintainers.items()

    def ledgers(self) -> dict[str, ViewLedger]:
        """Per-view maintenance ledgers, keyed by view name."""
        return {name: m.ledger for name, m in self._maintainers.items()}

    def ledger_snapshot(self) -> dict[str, dict]:
        """Per-view cumulative cost summaries (JSON-friendly)."""
        model = self.database.counter.model
        return {
            name: m.ledger.summary(model)
            for name, m in self._maintainers.items()
        }

    def ledger_summary(self) -> str:
        """Fixed-width per-view cost table (companion to ``slo_summary``)."""
        return _render_ledger_summary(
            (m.ledger for m in self._maintainers.values()),
            self.database.counter.model,
        )

    def __repr__(self) -> str:
        return f"MaintenanceCoordinator(views={list(self._maintainers)})"
