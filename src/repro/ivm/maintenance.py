"""Batch delta propagation -- the maintenance "SQL statements" of the paper.

:func:`apply_batch` processes the ``k`` oldest pending modifications of one
base table into the view:

1. split the events into deleted and inserted base rows;
2. evaluate the view's join with the batch substituted for its base table
   (the *rebased* query: the delta drives the join so inner-table indexes
   can be used), reading every **other** base table at the LSN the view has
   already incorporated -- not its current state.  This snapshot discipline
   is what avoids the state bug [Colby et al. 1996] that the paper's
   footnote 1 references;
3. fold inserted-derived rows into the view, then remove deleted-derived
   rows (insert-before-delete keeps update chains within one batch from
   transiently underflowing multiplicities);
4. advance the delta table's ``applied_lsn``.

Cost: everything runs against the engine's shared cost counter; use
``database.counter.window()`` around a call to measure the batch's
simulated cost.  The measured curve as a function of ``k`` is exactly the
paper's ``f_i(k)``.
"""

from __future__ import annotations

from repro import obs
from repro.engine.errors import ExecutionError
from repro.engine.query import QuerySpec
from repro.ivm.view import MaterializedView


def _flat_rebased_spec(view: MaterializedView, alias: str) -> QuerySpec:
    """The view's join rebased onto ``alias``, with aggregation stripped.

    Maintenance needs the raw join rows (to fold into multisets or
    aggregate states); the aggregate itself is applied by the view's
    content layer.
    """
    rebased = view.rebased_specs[alias]
    return QuerySpec(
        base_alias=rebased.base_alias,
        base_table=rebased.base_table,
        joins=rebased.joins,
        filters=rebased.filters,
    )


def apply_batch(view: MaterializedView, alias: str, k: int, batch=None) -> None:
    """Propagate the ``k`` oldest pending modifications of ``alias``.

    When ``batch`` (a :class:`~repro.ivm.sharedscan.SharedBatch`) is
    given, the deleted/inserted row split was already produced -- and its
    scan cost already charged -- by the round's shared table scan, so the
    per-view work here is just the delta-join and content fold.
    """
    if alias not in view.deltas:
        raise ExecutionError(
            f"view {view.name!r} has no base table aliased {alias!r}"
        )
    if k == 0:
        return
    delta = view.deltas[alias]
    if batch is not None:
        if batch.events != k:
            raise ExecutionError(
                f"view {view.name!r}: shared batch covers {batch.events} "
                f"events but {k} were planned for {alias!r}"
            )
        with obs.trace("ivm.apply_batch", alias=alias, k=k):
            _propagate(view, alias, batch.deleted, batch.inserted)
    else:
        events = delta.peek(k)
        if len(events) < k:
            raise ExecutionError(
                f"view {view.name!r}: asked to process {k} events from "
                f"{alias!r} but only {len(events)} pending"
            )
        with obs.trace("ivm.apply_batch", alias=alias, k=k):
            _apply_events(view, alias, events)
    obs.counter("ivm.batches_applied")
    obs.counter("ivm.modifications_applied", k)
    delta.take(k)


def _apply_events(view: MaterializedView, alias: str, events) -> None:
    """Propagate one peeked batch of delta events into the view.

    ``events`` is one contiguous window of the base table's shared
    :class:`~repro.engine.table.ModLog`; a single pass splits it into the
    deleted and inserted row batches (an update contributes to both), and
    each batch flows through the rebased query as a whole -- the engine's
    blocked pipeline chunks it from there.
    """
    deleted: list[tuple] = []
    inserted: list[tuple] = []
    for event in events:
        if event.old_values is not None:
            deleted.append(event.old_values)
        if event.new_values is not None:
            inserted.append(event.new_values)
    _propagate(view, alias, deleted, inserted)


def _propagate(view, alias: str, deleted, inserted) -> None:
    """Run the rebased delta-join over split row batches and fold results."""
    # Other base tables are read at the state the view has incorporated.
    snapshot_lsns = {
        other: d.applied_lsn
        for other, d in view.deltas.items()
        if other != alias
    }
    spec = _flat_rebased_spec(view, alias)

    derived_inserts = None
    if inserted:
        derived_inserts = view.database.execute(
            spec, snapshot_lsns=snapshot_lsns, substitutions={alias: inserted}
        )
    derived_deletes = None
    if deleted:
        derived_deletes = view.database.execute(
            spec, snapshot_lsns=snapshot_lsns, substitutions={alias: deleted}
        )

    if derived_inserts is not None:
        layout = {n: i for i, n in enumerate(derived_inserts.columns)}
        view.apply_insert_rows(derived_inserts.rows, layout)
    if derived_deletes is not None:
        layout = {n: i for i, n in enumerate(derived_deletes.columns)}
        view.apply_delete_rows(derived_deletes.rows, layout)


def full_refresh(view: MaterializedView) -> None:
    """Process every pending modification (the forced refresh at ``T``).

    Base tables are handled one after another; each batch reads the others
    at their *current* ``applied_lsn``, which advances as earlier batches
    complete, so the sequential composition is consistent.
    """
    for alias in view.spec.aliases:
        pending = view.deltas[alias].size
        if pending:
            apply_batch(view, alias, pending)


def refresh_cost_breakdown(view: MaterializedView) -> dict[str, float]:
    """Per-alias simulated cost of a hypothetical full refresh, measured.

    Runs each alias's flush inside a cost window.  Mutates the view (the
    refresh really happens); callers wanting a dry estimate should use the
    calibrated cost functions instead.
    """
    breakdown: dict[str, float] = {}
    for alias in view.spec.aliases:
        pending = view.deltas[alias].size
        with view.database.counter.window() as window:
            if pending:
                apply_batch(view, alias, pending)
        breakdown[alias] = window.elapsed_ms
    return breakdown
