"""An analytics dashboard: SQL-defined summary views, coordinated refresh.

Shows the whole library surface working together:

* summary views declared in **SQL** (`repro.sql`) over TPC-R;
* several views hosted by one **MaintenanceCoordinator**, each with its
  own scheduling policy and refresh budget;
* **EXPLAIN** output for the maintenance-relevant physical plans;
* an ASCII **timeline** of how the ONLINE policy paced one view's
  maintenance over the run.

Run:  python examples/analytics_dashboard.py
"""

from repro.core import LinearCost, OnlinePolicy, NaivePolicy
from repro.engine import Database
from repro.ivm import MaintenanceCoordinator, ViewConfig
from repro.sql import parse_query, render_query
from repro.tpcr import (
    PartSuppCostUpdater,
    SupplierNationUpdater,
    load_tpcr,
)

DASHBOARD_VIEWS = {
    # The paper's view: cheapest MIDDLE EAST supply cost.
    "cheapest_middle_east": """
        SELECT MIN(PS.supplycost)
        FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
        WHERE S.suppkey = PS.suppkey AND S.nationkey = N.nationkey
          AND N.regionkey = R.regionkey AND R.name = 'MIDDLE EAST'
    """,
    # Supplier head-count per region.
    "suppliers_by_region": """
        SELECT COUNT(S.suppkey)
        FROM supplier AS S, nation AS N, region AS R
        WHERE S.nationkey = N.nationkey AND N.regionkey = R.regionkey
        GROUP BY R.name
    """,
    # Total available quantity offered by ASIA suppliers.
    "asia_availability": """
        SELECT SUM(PS.availqty)
        FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
        WHERE S.suppkey = PS.suppkey AND S.nationkey = N.nationkey
          AND N.regionkey = R.regionkey AND R.name = 'ASIA'
    """,
}

#: Hand-calibrated planner costs: (PartSupp deltas, Supplier deltas).
VIEW_BUDGETS = {
    "cheapest_middle_east": (
        (LinearCost(0.2, 1.0), LinearCost(10.0, 120.0)), 700.0, OnlinePolicy()
    ),
    "suppliers_by_region": (
        (LinearCost(0.01), LinearCost(2.0, 5.0)), 120.0, NaivePolicy()
    ),
    "asia_availability": (
        (LinearCost(0.2, 1.0), LinearCost(10.0, 120.0)), 900.0, OnlinePolicy()
    ),
}


def main() -> None:
    db = Database()
    load_tpcr(db, scale=0.01)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")

    coordinator = MaintenanceCoordinator(db)
    for name, sql in DASHBOARD_VIEWS.items():
        spec = parse_query(sql)
        costs, limit, policy = VIEW_BUDGETS[name]
        scheduled = ("PS", "S") if "PS" in spec.aliases else ("S",)
        coordinator.add_view(
            ViewConfig(
                name=name,
                query=spec,
                policy=policy,
                cost_functions=costs[: len(scheduled)] if len(scheduled) == 1
                else costs,
                limit=limit,
                scheduled_aliases=scheduled,
            )
        )
        print(f"-- {name}: {render_query(spec)[:72]}...")
        print(db.explain(spec))
        print()

    ps_updates = PartSuppCostUpdater(db.table("partsupp"), seed=3)
    supplier_updates = SupplierNationUpdater(db.table("supplier"), seed=4)

    print("running 120 steps of feed activity...")
    for t in range(120):
        ps_updates.apply(30)
        supplier_updates.apply(1)
        coordinator.step(t)
    coordinator.refresh(t=120)

    print("\ndashboard (all views refreshed):")
    for name, maintainer in coordinator.iter_maintainers():
        view = maintainer.view
        value = (
            view.scalar()
            if not view.spec.aggregate.group_by
            else dict(sorted(view.contents().items()))
        )
        print(f"  {name:24s} = {value}")

    print("\nmaintenance cost breakdown (simulated ms):")
    for name, cost in sorted(
        coordinator.cost_breakdown().items(), key=lambda kv: -kv[1]
    ):
        log = coordinator.maintainer(name).log
        print(
            f"  {name:24s} {cost:9.1f} ms over {log.action_count} actions"
        )
    print(f"  {'TOTAL':24s} {coordinator.total_cost_ms():9.1f} ms")


if __name__ == "__main__":
    main()
