"""The paper's motivating pub/sub scenario, end to end.

Two subscriptions from the introduction:

* "tell me the value of my investment portfolio every hour" -- a periodic
  notification over an aggregate join view (holdings |x| prices);
* "report the cheapest MIDDLE EAST supply cost if the benchmark price has
  changed by more than 10% since the last report" -- a value-watch
  condition over the TPC-R MIN view.

Between notifications, each subscription's view is maintained
batch-incrementally by the ONLINE policy under a per-subscription
response-time guarantee: whenever a notification fires, the refresh
completes within the budget, yet the system batches as much as the
asymmetric cost structure allows.

Run:  python examples/pubsub_portfolio.py
"""

import random

from repro.core.costfuncs import LinearCost
from repro.core.online import OnlinePolicy
from repro.engine import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.engine.types import ColumnType, Schema
from repro.pubsub import EveryNSteps, PubSubBroker, Subscription, ValueWatch
from repro.tpcr import (
    PartSuppCostUpdater,
    SupplierNationUpdater,
    load_tpcr,
)


def build_market_tables(db: Database, rng: random.Random) -> None:
    """A tiny holdings/prices market next to the TPC-R data."""
    holdings = db.create_table(
        "holdings",
        Schema.of(account=ColumnType.INT, symbol=ColumnType.STR,
                  shares=ColumnType.FLOAT),
    )
    prices = db.create_table(
        "prices",
        Schema.of(symbol=ColumnType.STR, price=ColumnType.FLOAT),
    )
    symbols = ["OIL", "GAS", "ORE", "TIN", "ZN"]
    for symbol in symbols:
        prices.insert((symbol, rng.uniform(50, 150)))
    for __ in range(40):
        holdings.insert(
            (7, rng.choice(symbols), float(rng.randint(1, 100)))
        )
    prices.create_index("symbol")


def portfolio_query() -> QuerySpec:
    """SUM(shares * price) over holdings |x| prices for account 7."""
    return QuerySpec(
        base_alias="H",
        base_table="holdings",
        joins=(JoinSpec("P", "prices", "H.symbol", "symbol"),),
        filters=(col("H.account") == lit(7),),
        aggregate=AggregateSpec(
            func="sum", value=col("H.shares") * col("P.price")
        ),
    )


def min_supplycost_query() -> QuerySpec:
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(
            JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        filters=(col("R.name") == lit("MIDDLE EAST"),),
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def oil_price(db: Database) -> float:
    (row,) = db.table("prices").snapshot().lookup("symbol", "OIL")
    return row[1]


def main() -> None:
    rng = random.Random(42)
    db = Database()
    load_tpcr(db, scale=0.005)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    build_market_tables(db, rng)

    broker = PubSubBroker(db)

    # Subscription 1: portfolio value, every 10 steps ("every hour").
    broker.subscribe(
        Subscription(
            name="portfolio",
            query=portfolio_query(),
            condition=EveryNSteps(10, phase=9),
            policy=OnlinePolicy(),
            # Holdings rarely change; prices churn constantly but join a
            # tiny indexed table -- mild asymmetry, calibrated by hand here.
            cost_functions=(
                LinearCost(slope=0.1, setup=0.5),   # holdings deltas
                LinearCost(slope=0.4, setup=2.0),   # price deltas
            ),
            limit=60.0,
        )
    )

    # Subscription 2: cheapest MIDDLE EAST supply cost, whenever OIL moved
    # by more than 10% since the last report.
    broker.subscribe(
        Subscription(
            name="supply_watch",
            query=min_supplycost_query(),
            condition=ValueWatch(oil_price, relative=0.10),
            policy=OnlinePolicy(),
            cost_functions=(
                LinearCost(slope=0.2, setup=1.0),    # PartSupp deltas
                LinearCost(slope=10.0, setup=70.0),  # Supplier deltas
            ),
            limit=400.0,
            scheduled_aliases=("PS", "S"),
        )
    )

    ps_updates = PartSuppCostUpdater(db.table("partsupp"), seed=1)
    supplier_updates = SupplierNationUpdater(db.table("supplier"), seed=2)
    prices = db.table("prices")

    print("running 60 time steps of market + warehouse activity...\n")
    for t in range(60):
        # Market: every price drifts a little each step.
        for rid in prices.find_rids(lambda row: True):
            symbol, price = prices.version(rid).values
            drift = rng.gauss(0, 0.02) + (0.01 if symbol == "OIL" else 0)
            prices.update_rid(rid, {"price": max(1.0, price * (1 + drift))})
        # Warehouse: the paper's update streams.
        ps_updates.apply(10)
        if t % 3 == 0:
            supplier_updates.apply(1)

        for notification in broker.tick(t):
            marker = "*" if notification.changed else " "
            print(
                f"t={notification.t:3d} {marker} [{notification.subscription}] "
                f"{notification.old_result!r} -> {notification.new_result!r} "
                f"(refresh {notification.refresh_cost_ms:.1f} ms, "
                f"guarantee {'OK' if notification.within_guarantee else 'MISS'})"
            )

    print("\nper-subscription summary:")
    for name in broker.subscriptions:
        print(
            f"  {name:13s} notifications={len(broker.notifications(name)):2d} "
            f"maintenance={broker.maintenance_cost_ms(name):8.1f} ms "
            f"guarantee violations={broker.guarantee_violations(name)}"
        )


if __name__ == "__main__":
    main()
