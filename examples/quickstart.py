"""Quickstart: asymmetric batch view maintenance in five minutes.

Builds the paper's scenario end to end on a small TPC-R database:

1. load TPC-R and define the 4-way MIN view;
2. *measure* the batch cost functions f_PS(k) and f_S(k) from the live
   engine (they come out asymmetric: PartSupp deltas cheap and linear,
   Supplier deltas setup-heavy);
3. plan with the paper's four strategies under a response-time constraint;
4. compare total maintenance costs.

Run:  python examples/quickstart.py
"""

from repro import (
    NaivePolicy,
    OnlinePolicy,
    ProblemInstance,
    adapt_plan,
    find_optimal_lgm_plan,
    simulate_policy,
)
from repro.engine import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.ivm import MaterializedView, measure_cost_function
from repro.tpcr import PartSuppCostUpdater, SupplierNationUpdater, load_tpcr


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A TPC-R database with the paper's physical design: Supplier is
    #    indexed on the join key, PartSupp deliberately is not.
    # ------------------------------------------------------------------
    db = Database()
    counts = load_tpcr(db, scale=0.01)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    print(f"loaded TPC-R: {counts}")

    view = MaterializedView(
        "min_supplycost",
        db,
        QuerySpec(
            base_alias="PS",
            base_table="partsupp",
            joins=(
                JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
                JoinSpec("N", "nation", "S.nationkey", "nationkey"),
                JoinSpec("R", "region", "N.regionkey", "regionkey"),
            ),
            filters=(col("R.name") == lit("MIDDLE EAST"),),
            aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
        ),
    )
    print(f"initial MIN(supplycost) for MIDDLE EAST = {view.scalar()}")

    # ------------------------------------------------------------------
    # 2. Calibrate the batch cost functions from the live engine.
    # ------------------------------------------------------------------
    ps_updates = PartSuppCostUpdater(db.table("partsupp"), seed=1)
    s_updates = SupplierNationUpdater(db.table("supplier"), seed=2)
    sweep = (10, 25, 50, 100, 200)
    f_ps = measure_cost_function(view, "PS", sweep, ps_updates)
    f_s = measure_cost_function(view, "S", sweep, s_updates)
    print(f"\nmeasured cost functions (simulated ms):")
    print(f"  f_PS ~ {f_ps.linear_fit}")
    print(f"  f_S  ~ {f_s.linear_fit}")
    print(
        "  -> asymmetry: Supplier batches pay a "
        f"{f_s.linear_fit.setup / max(f_ps.linear_fit.setup, 1e-9):.0f}x "
        "larger setup cost"
    )

    # ------------------------------------------------------------------
    # 3. Schedule under a response-time constraint C.  Modifications
    #    arrive uniformly over database rows: 80 PartSupp + 1 Supplier
    #    update per time step.
    # ------------------------------------------------------------------
    limit = f_s.tabulated(30) * 1.15
    horizon = 300
    arrivals = [(80, 1)] * (horizon + 1)
    problem = ProblemInstance(
        (f_ps.tabulated, f_s.tabulated), limit, arrivals
    )
    print(f"\nresponse-time constraint C = {limit:.0f} ms, T = {horizon}")

    naive = simulate_policy(problem, NaivePolicy())
    optimal = find_optimal_lgm_plan(problem)
    adapt = simulate_policy(problem, adapt_plan(problem, horizon // 2))
    online = simulate_policy(problem, OnlinePolicy())

    # ------------------------------------------------------------------
    # 4. Compare.
    # ------------------------------------------------------------------
    print("\ntotal maintenance cost over the period:")
    rows = [
        ("NAIVE (symmetric baseline)", naive.total_cost),
        ("OPT_LGM (A*, full knowledge)", optimal.cost),
        ("ADAPT (plan for T/2, reused)", adapt.total_cost),
        ("ONLINE (no advance knowledge)", online.total_cost),
    ]
    for name, cost in rows:
        print(f"  {name:32s} {cost:10.0f} ms")
    print(
        f"\nasymmetric scheduling beats the symmetric baseline by "
        f"{naive.total_cost / optimal.cost:.2f}x"
    )


if __name__ == "__main__":
    main()
