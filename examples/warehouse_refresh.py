"""Data-warehouse deferred maintenance: policy shoot-out on a live system.

A warehouse keeps the paper's MIN(supplycost) summary view over TPC-R.
Analysts demand that an on-request refresh never takes more than C
(simulated) milliseconds.  Feeds apply a steady trickle of updates: many
PartSupp supplycost changes, occasional Supplier reassignments.

We run the *same* feed against four scheduling strategies -- EAGER
(maintain immediately), NAIVE (the traditional deferred approach), ADAPT,
and ONLINE -- each on its own copy of the warehouse, and compare the
measured maintenance cost and the worst observed refresh backlog.

Run:  python examples/warehouse_refresh.py
"""

from repro.core.adapt import adapt_plan
from repro.core.naive import NaivePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import Policy
from repro.core.problem import ProblemInstance
from repro.engine import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.ivm import MaterializedView, ViewMaintainer, measure_cost_function
from repro.tpcr import PartSuppCostUpdater, SupplierNationUpdater, load_tpcr

SCALE = 0.01
HORIZON = 120
FEED = (40, 1)  # PartSupp / Supplier modifications per step


class EagerPolicy(Policy):
    """Immediate maintenance: process everything at every step."""

    def decide(self, t, pre_state):
        return pre_state

    def __repr__(self):
        return "EagerPolicy()"


def warehouse_spec() -> QuerySpec:
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(
            JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),
            JoinSpec("N", "nation", "S.nationkey", "nationkey"),
            JoinSpec("R", "region", "N.regionkey", "regionkey"),
        ),
        filters=(col("R.name") == lit("MIDDLE EAST"),),
        aggregate=AggregateSpec(func="min", value=col("PS.supplycost")),
    )


def build_warehouse(seed: int):
    db = Database()
    load_tpcr(db, scale=SCALE, seed=19721212)
    db.table("supplier").create_index("suppkey")
    db.table("nation").create_index("nationkey")
    db.table("region").create_index("regionkey")
    view = MaterializedView("summary", db, warehouse_spec())
    ps = PartSuppCostUpdater(db.table("partsupp"), seed=seed)
    sup = SupplierNationUpdater(db.table("supplier"), seed=seed + 1)
    return db, view, ps, sup


def main() -> None:
    # Calibrate once on a scratch warehouse.
    __, scratch_view, scratch_ps, scratch_sup = build_warehouse(seed=900)
    f_ps = measure_cost_function(
        scratch_view, "PS", (10, 40, 120), scratch_ps
    ).tabulated
    f_s = measure_cost_function(
        scratch_view, "S", (5, 15, 30), scratch_sup
    ).tabulated
    limit = f_s(25) * 1.2
    print(f"calibrated; refresh budget C = {limit:.0f} ms\n")

    arrivals = [FEED] * (HORIZON + 1)
    problem = ProblemInstance((f_ps, f_s), limit, arrivals)

    strategies = [
        ("EAGER", EagerPolicy()),
        ("NAIVE", NaivePolicy()),
        ("ADAPT", adapt_plan(problem, HORIZON // 2)),
        ("ONLINE", OnlinePolicy()),
    ]

    print(f"{'strategy':8s} {'maintenance ms':>15s} {'actions':>8s} "
          f"{'peak backlog ms':>16s} {'refresh <= C':>12s}")
    results = {}
    for name, policy in strategies:
        __, view, ps, sup = build_warehouse(seed=77)  # identical feeds
        maintainer = ViewMaintainer(
            view, (f_ps, f_s), limit=limit, policy=policy,
            scheduled_aliases=("PS", "S"),
        )
        peak_backlog = 0.0
        for t in range(HORIZON + 1):
            ps.apply(FEED[0])
            sup.apply(FEED[1])
            if t == HORIZON:
                maintainer.refresh(t)
            else:
                record = maintainer.step(t)
                post = tuple(
                    s - a for s, a in zip(record.pre_state, record.action)
                )
                peak_backlog = max(
                    peak_backlog, maintainer.predicted_refresh_cost(post)
                )
        assert view.contents() == view.recompute()
        total = maintainer.log.total_actual_cost_ms
        results[name] = total
        print(
            f"{name:8s} {total:15.0f} {maintainer.log.action_count:8d} "
            f"{peak_backlog:16.0f} {'yes' if peak_backlog <= limit else 'NO':>12s}"
        )

    print(
        f"\nONLINE saves {100 * (1 - results['ONLINE'] / results['NAIVE']):.0f}% "
        f"over NAIVE and {100 * (1 - results['ONLINE'] / results['EAGER']):.0f}% "
        f"over EAGER, with the same refresh guarantee."
    )


if __name__ == "__main__":
    main()
