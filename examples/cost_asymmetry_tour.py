"""A tour of cost-function asymmetry: when does asymmetric batching win?

Pure-core example (no engine): sweeps synthetic two-table instances where
table 1 has a cheap linear cost and table 2's cost family and setup size
vary, and reports how much the optimal asymmetric plan saves over the
symmetric NAIVE baseline.  Demonstrates the paper's observations:

* with *no* setup anywhere, batching is pointless and every plan ties;
* the bigger the setup-to-slope ratio of the batch-friendly table, the
  bigger the asymmetric advantage;
* the shape (block-I/O staircase, concave, linear) matters less than the
  setup share -- subadditivity is what the theory needs, and the
  advantage comes from amortizing setups.

Also prints the Section 3.2 tightness construction, where restricting to
LGM plans genuinely costs a factor approaching 2.

Run:  python examples/cost_asymmetry_tour.py
"""

from repro import (
    BlockIOCost,
    ConcaveCost,
    LinearCost,
    NaivePolicy,
    ProblemInstance,
    StepCost,
    find_optimal_lgm_plan,
    find_optimal_plan_exhaustive,
    simulate_policy,
)


def advantage(batchy, limit=200.0, horizon=240) -> tuple[float, float, float]:
    """(naive, optimal, ratio) for cheap-linear + ``batchy`` instance."""
    cheap = LinearCost(slope=1.0)
    problem = ProblemInstance(
        (cheap, batchy), limit, [(1, 1)] * (horizon + 1)
    )
    naive = simulate_policy(problem, NaivePolicy()).total_cost
    optimal = find_optimal_lgm_plan(problem).cost
    return naive, optimal, naive / optimal


def main() -> None:
    print("asymmetric advantage vs cost family (C = 200, T = 240)\n")
    print(f"{'table-2 cost function':34s} {'NAIVE':>9s} {'OPT':>9s} {'ratio':>7s}")
    families = [
        ("linear, no setup", LinearCost(slope=1.0)),
        ("linear, setup 20", LinearCost(slope=1.0, setup=20.0)),
        ("linear, setup 60", LinearCost(slope=1.0, setup=60.0)),
        ("linear, setup 140", LinearCost(slope=1.0, setup=140.0)),
        ("block I/O, 40/32 rows", BlockIOCost(io_cost=40.0, block_size=32)),
        ("block I/O, 80/64 rows", BlockIOCost(io_cost=80.0, block_size=64)),
        ("concave 12*sqrt(k)", ConcaveCost(coeff=12.0, exponent=0.5)),
        ("concave 25*k^0.3", ConcaveCost(coeff=25.0, exponent=0.3)),
    ]
    for name, cost in families:
        naive, optimal, ratio = advantage(cost)
        print(f"{name:34s} {naive:9.0f} {optimal:9.0f} {ratio:7.2f}")

    print("\nthe LGM restriction's price (Section 3.2 tightness):\n")
    print(f"{'eps':>6s} {'OPT_LGM':>9s} {'OPT':>9s} {'ratio':>7s} {'2-eps':>7s}")
    for eps in (1.0, 0.5, 0.25):
        limit = 10.0
        per_step = int(round(2 / eps)) + 1
        problem = ProblemInstance(
            [StepCost(eps=eps, limit=limit)], limit, [(per_step,)] * 6
        )
        lgm = find_optimal_lgm_plan(problem).cost
        opt = find_optimal_plan_exhaustive(problem).cost
        print(
            f"{eps:6.2f} {lgm:9.1f} {opt:9.1f} {lgm / opt:7.3f} "
            f"{2 - eps:7.2f}"
        )
    print(
        "\n(for everyday cost functions -- linear, block I/O, concave -- the"
        "\n best LGM plan matched the unrestricted optimum in every sweep"
        "\n above; the pathological step function is what the factor-2"
        "\n worst case requires)"
    )


if __name__ == "__main__":
    main()
