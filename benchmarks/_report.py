"""Benchmark result reporting.

Every benchmark regenerates one of the paper's tables/figures; the data
matters as much as the timing.  ``report`` writes the formatted table to
``benchmarks/results/<name>.txt`` and mirrors it to the real stdout so it
survives pytest's output capture (``pytest benchmarks/ --benchmark-only``
then shows the reproduced tables inline, as EXPERIMENTS.md references).

Alongside each ``.txt`` a machine-readable ``.json`` (same basename) is
written with ``{name, params, metrics, wall_time_s}``:

* ``params`` -- whatever the benchmark passes (scale factors, sweeps);
* ``metrics`` -- the :mod:`repro.obs` registry snapshot of the run (the
  ``conftest`` harness installs a recorder around every benchmark), so
  node expansions, rows joined, batches flushed etc. are diffable;
* ``profile`` -- per-operator-kind attribution totals over every query
  the run profiled (:func:`repro.obs.attrib.aggregate_profiles`);
  ``report_trajectory.py`` renders these as the top-operators table;
* ``wall_time_s`` -- the harness-measured wall time of the benchmarked
  callable.

Future PRs diff these files to track the perf trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

RESULTS_DIR = Path(__file__).parent / "results"

#: Tables produced by the current pytest session, in execution order.
#: The conftest's terminal-summary hook prints these after the run --
#: pytest captures even ``sys.__stdout__`` at the fd level, so printing
#: from inside the benchmark would be swallowed.
SESSION_REPORTS: list[tuple[str, str]] = []

#: Observations from the most recent ``run_once`` call, keyed
#: ``wall_time_s`` / ``metrics``; consumed (popped) by :func:`report` so
#: one benchmark's numbers can never leak into the next report.
LAST_RUN: dict[str, Any] = {}


def report(
    name: str, text: str, params: Mapping[str, Any] | None = None
) -> Path:
    """Persist one experiment's formatted output and queue it for display.

    Writes ``<name>.txt`` (the human-readable table, as before) and
    ``<name>.json`` (structured: params + obs metrics + wall time).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    payload = {
        "name": name,
        "params": dict(params or {}),
        "metrics": LAST_RUN.pop("metrics", {}),
        "profile": LAST_RUN.pop("profile", {}),
        "wall_time_s": LAST_RUN.pop("wall_time_s", None),
    }
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    SESSION_REPORTS.append((name, text))
    return path
