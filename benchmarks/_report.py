"""Benchmark result reporting.

Every benchmark regenerates one of the paper's tables/figures; the data
matters as much as the timing.  ``report`` writes the formatted table to
``benchmarks/results/<name>.txt`` and mirrors it to the real stdout so it
survives pytest's output capture (``pytest benchmarks/ --benchmark-only``
then shows the reproduced tables inline, as EXPERIMENTS.md references).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Tables produced by the current pytest session, in execution order.
#: The conftest's terminal-summary hook prints these after the run --
#: pytest captures even ``sys.__stdout__`` at the fd level, so printing
#: from inside the benchmark would be swallowed.
SESSION_REPORTS: list[tuple[str, str]] = []


def report(name: str, text: str) -> Path:
    """Persist one experiment's formatted output and queue it for display."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    SESSION_REPORTS.append((name, text))
    return path
