"""Benchmark result reporting.

Every benchmark regenerates one of the paper's tables/figures; the data
matters as much as the timing.  ``report`` writes the formatted table to
``benchmarks/results/<name>.txt`` and mirrors it to the real stdout so it
survives pytest's output capture (``pytest benchmarks/ --benchmark-only``
then shows the reproduced tables inline, as EXPERIMENTS.md references).

Alongside each ``.txt`` a machine-readable ``.json`` (same basename) is
written with ``{name, params, metrics, wall_time_s}``:

* ``params`` -- whatever the benchmark passes (scale factors, sweeps);
* ``metrics`` -- the :mod:`repro.obs` registry snapshot of the run (the
  ``conftest`` harness installs a recorder around every benchmark), so
  node expansions, rows joined, batches flushed etc. are diffable; at
  fleet scale the per-view ``ivm.view.*`` series are folded into
  ``ivm.view._fleet.*`` summaries (:func:`compact_metrics`) so one
  2000-view run cannot bloat the committed results;
* ``profile`` -- per-operator-kind attribution totals over every query
  the run profiled (:func:`repro.obs.attrib.aggregate_profiles`);
  ``report_trajectory.py`` renders these as the top-operators table;
* ``wall_time_s`` -- the harness-measured wall time of the benchmarked
  callable.

Future PRs diff these files to track the perf trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

RESULTS_DIR = Path(__file__).parent / "results"

#: Tables produced by the current pytest session, in execution order.
#: The conftest's terminal-summary hook prints these after the run --
#: pytest captures even ``sys.__stdout__`` at the fd level, so printing
#: from inside the benchmark would be swallowed.
SESSION_REPORTS: list[tuple[str, str]] = []

#: Observations from the most recent ``run_once`` call, keyed
#: ``wall_time_s`` / ``metrics``; consumed (popped) by :func:`report` so
#: one benchmark's numbers can never leak into the next report.
LAST_RUN: dict[str, Any] = {}

#: Per-view metric series above this many distinct view ids are folded
#: into one ``ivm.view._fleet.<field>`` aggregate per field by
#: :func:`compact_metrics`.  A fleet-scale benchmark (2000 views x 6
#: fields) otherwise commits tens of thousands of JSON lines per run
#: that no dashboard reads individually.
MAX_VIEW_SERIES = 32


def _scalar(data: Any) -> float | None:
    """One representative number for a metric snapshot entry.

    Counter/gauge ``value``, histogram ``total`` (falling back to
    ``count`` for count-only shapes); ``None`` when nothing numeric is
    found, in which case the series is kept verbatim.
    """
    if isinstance(data, (int, float)):
        return float(data)
    if isinstance(data, dict):
        for key in ("value", "total", "count"):
            value = data.get(key)
            if isinstance(value, (int, float)):
                return float(value)
    return None


def compact_metrics(
    metrics: Mapping[str, Any], max_series: int = MAX_VIEW_SERIES
) -> dict[str, Any]:
    """Fold per-view ``ivm.view.<id>.<field>`` series at fleet scale.

    When more than ``max_series`` distinct view ids appear, each field's
    per-view series collapse into a single
    ``ivm.view._fleet.<field>`` entry of shape
    ``{"type": "summary", "views": N, "sum", "min", "max"}`` computed
    over one representative scalar per view (counter/gauge value,
    histogram total).  Below the threshold -- every hand-sized run --
    the snapshot passes through untouched, so existing result diffs are
    unaffected.  True totals are preserved: ``sum`` over the fleet
    equals the sum of the folded per-view values.
    """
    per_field: dict[str, dict[str, float]] = {}
    passthrough: dict[str, Any] = {}
    view_ids: set[str] = set()
    for name, data in metrics.items():
        if name.startswith("ivm.view.") and not name.startswith(
            "ivm.view._fleet."
        ):
            vid, _, field = name[len("ivm.view.") :].rpartition(".")
            value = _scalar(data) if vid else None
            if value is not None:
                view_ids.add(vid)
                per_field.setdefault(field, {})[vid] = value
                continue
        passthrough[name] = data
    if len(view_ids) <= max_series:
        return dict(metrics)
    for field, by_view in sorted(per_field.items()):
        values = list(by_view.values())
        passthrough[f"ivm.view._fleet.{field}"] = {
            "type": "summary",
            "views": len(by_view),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
        }
    return passthrough


def report(
    name: str, text: str, params: Mapping[str, Any] | None = None
) -> Path:
    """Persist one experiment's formatted output and queue it for display.

    Writes ``<name>.txt`` (the human-readable table, as before) and
    ``<name>.json`` (structured: params + obs metrics + wall time).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    payload = {
        "name": name,
        "params": dict(params or {}),
        "metrics": compact_metrics(LAST_RUN.pop("metrics", {})),
        "profile": LAST_RUN.pop("profile", {}),
        "wall_time_s": LAST_RUN.pop("wall_time_s", None),
    }
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    SESSION_REPORTS.append((name, text))
    return path
