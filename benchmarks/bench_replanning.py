"""Extension bench: receding-horizon re-planning vs the ONLINE heuristic."""

from benchmarks._report import report
from repro.experiments.ablations import run_replanning_study


def bench_replanning(run_once):
    result = run_once(run_replanning_study)
    report("ablation_replanning", result.format())
    rows = {name: (o, r) for name, o, r, __ in result.rows()}
    # With exact rates (uniform stream) MPC re-planning is optimal.
    assert rows["uniform"][1] < 1.001
    # Both stay within a few percent of OPT everywhere.
    for online, receding in rows.values():
        assert online < 1.05
        assert receding < 1.05
