"""Figure 5: validating simulated plan costs against live execution."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.fig5_validation import run_fig5


def bench_fig5_validation(run_once):
    result = run_once(run_fig5)
    report(
        "fig5_validation", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # Paper: "negligible difference between simulated and actual costs".
    assert result.max_relative_error() < 0.15
