"""Benchmark-suite configuration.

Each benchmark runs its experiment exactly once (``rounds=1``): the
experiments are deterministic, so repeated timing rounds would only
re-measure identical work, and several of them are minutes-scale at full
parameters.
"""

from __future__ import annotations

import time

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn(*args, **kwargs)`` once under the benchmark clock and
    return its result.

    The run executes under a fresh :mod:`repro.obs` recorder (metrics
    only -- no span buffering) plus a query-profile sink, and its wall
    time, metrics snapshot, and per-operator profile aggregate are staged
    in ``benchmarks._report.LAST_RUN`` for the benchmark's
    ``report(...)`` call to fold into ``results/<name>.json``.
    """

    def runner(fn, *args, **kwargs):
        from benchmarks import _report
        from repro import obs
        from repro.obs import attrib

        recorder = obs.Recorder(trace=False)
        obs.install(recorder)
        profiles: list[dict] = []
        previous_sink = attrib.set_profile_sink(profiles.append)
        start = time.perf_counter()
        try:
            result = benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        finally:
            obs.install(None)
            attrib.set_profile_sink(previous_sink)
        _report.LAST_RUN["wall_time_s"] = round(
            time.perf_counter() - start, 4
        )
        _report.LAST_RUN["metrics"] = recorder.registry.snapshot()
        _report.LAST_RUN["profile"] = attrib.aggregate_profiles(profiles)
        return result

    return runner


def pytest_terminal_summary(terminalreporter):
    """Print every regenerated paper table after the timing summary.

    Runs outside pytest's capture, so the tables reach the real stdout
    (and any `tee`), alongside their persisted copies under
    ``benchmarks/results/``.
    """
    from benchmarks._report import SESSION_REPORTS

    if not SESSION_REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("reproduced paper tables (also saved under benchmarks/results/)")
    write("=" * 70)
    for name, text in SESSION_REPORTS:
        write("")
        for line in text.splitlines():
            write(line)
