"""Figure 4: maintenance cost vs batch size for the 4-way MIN view."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.fig4_maintenance_costs import run_fig4


def bench_fig4_maintenance_costs(run_once):
    result = run_once(run_fig4)
    report(
        "fig4_maintenance_costs", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # Paper: Supplier batches cost more than PartSupp batches throughout,
    # and both curves follow linear trends -- with "some irregularities"
    # (here: MIN-recomputation spikes), so small-batch relative error on
    # the cheap curve can be large while the trend still fits.
    assert all(cost_s > cost_ps for __, cost_ps, cost_s in result.rows())
    assert result.partsupp.max_relative_fit_error() < 1.2
    assert result.supplier.max_relative_fit_error() < 0.5
