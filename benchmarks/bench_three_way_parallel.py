"""Three-way scheduling at SF 0.1: serial vs parallel block pipeline.

Replays the n = 3 asymmetric-scheduling experiment with the engine's
default worker count forced to a pool (`set_default_workers`, the same
mechanism as the global `--workers` CLI flag), and compares against the
serial run.  The simulated plan costs -- the paper's observable -- must
be byte-identical; wall time per mode and the host core count are
recorded in ``results/three_way_parallel.json`` so multi-core and
single-core runs are distinguishable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from benchmarks._report import report
from repro.engine import parallel
from repro.experiments.three_way import ThreeWayResult, run_three_way

SCALE = 0.1
WORKERS = 4


@dataclass
class ThreeWayParallelResult:
    serial: ThreeWayResult
    parallel: ThreeWayResult
    serial_wall_s: float
    parallel_wall_s: float
    cpu_count: int

    def format(self) -> str:
        return "\n".join(
            [
                f"three_way at SF {SCALE}: serial vs workers={WORKERS} "
                f"({self.cpu_count} cpu core(s))",
                f"{'mode':<10} {'wall_s':>8}   opt / naive / online cost",
                f"{'serial':<10} {self.serial_wall_s:>8.2f}   "
                f"{self.serial.opt_cost:.2f} / {self.serial.naive_cost:.2f}"
                f" / {self.serial.online_cost:.2f}",
                f"{'parallel':<10} {self.parallel_wall_s:>8.2f}   "
                f"{self.parallel.opt_cost:.2f} / "
                f"{self.parallel.naive_cost:.2f} / "
                f"{self.parallel.online_cost:.2f}",
                "simulated cost tables byte-identical across modes",
            ]
        )


def _timed_run(workers: int) -> tuple[ThreeWayResult, float]:
    parallel.set_default_workers(workers)
    try:
        start = time.perf_counter()
        result = run_three_way(scale=SCALE)
        return result, time.perf_counter() - start
    finally:
        parallel.set_default_workers(None)


def run_three_way_parallel() -> ThreeWayParallelResult:
    serial, serial_wall = _timed_run(0)
    pooled, pooled_wall = _timed_run(WORKERS)
    return ThreeWayParallelResult(
        serial=serial,
        parallel=pooled,
        serial_wall_s=serial_wall,
        parallel_wall_s=pooled_wall,
        cpu_count=os.cpu_count() or 1,
    )


def bench_three_way_parallel(run_once):
    result = run_once(run_three_way_parallel)
    report(
        "three_way_parallel",
        result.format(),
        params={
            "scale": SCALE,
            "workers": WORKERS,
            "cpu_count": result.cpu_count,
            "serial_wall_s": round(result.serial_wall_s, 3),
            "parallel_wall_s": round(result.parallel_wall_s, 3),
        },
    )
    # Simulated costs are the observable: the pool must not move them.
    for field in ("opt_cost", "naive_cost", "online_cost"):
        assert getattr(result.parallel, field) == getattr(
            result.serial, field
        ), f"{field} diverges under workers={WORKERS}"
    # Wall-clock parity gate; a real win needs real cores.
    assert result.parallel_wall_s < 3.0 * result.serial_wall_s
