"""Future-work bench: does concavity tighten the LGM factor-2 bound?"""

import pytest

from benchmarks._report import report
from repro.experiments.concavity_study import run_concavity_study


def bench_concavity_study(run_once):
    result = run_once(run_concavity_study)
    report("concavity_study", result.format())
    # The measured ordering: linear == 1 exactly; concave small; the
    # non-concave families carry the big gaps.
    assert result.worst("linear") == pytest.approx(1.0)
    assert result.worst("concave") < 1.1
    assert result.worst("step") >= 1.5
    assert result.worst("concave") < result.worst("block-io")
