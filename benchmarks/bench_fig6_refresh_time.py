"""Figure 6: total cost vs refresh time for NAIVE / OPT_LGM / ADAPT /
ONLINE (the paper's headline comparison)."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.fig6_refresh_time import run_fig6


def bench_fig6_refresh_time(run_once):
    result = run_once(run_fig6)
    report(
        "fig6_refresh_time", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # Paper shape: NAIVE clearly outperformed everywhere; ADAPT and ONLINE
    # track OPT_LGM closely despite using less advance knowledge.
    assert result.worst_ratio_vs_opt("naive") > 1.2
    assert result.worst_ratio_vs_opt("adapt") < 1.1
    assert result.worst_ratio_vs_opt("online") < 1.1
