"""Compare fresh benchmark wall times against committed baselines.

CI usage (see ``.github/workflows/ci.yml``): the committed
``benchmarks/results/*.json`` files are copied aside before the
benchmarks re-run, then this script diffs ``wall_time_s`` per benchmark
name and **fails only on a >2x regression** (shared runners are noisy;
anything under the threshold is reported but tolerated).  Simulated
costs are deliberately not compared here — those are byte-exact and
guarded by the test suite, not by a tolerance.

Exit status: 0 when every common benchmark is within the threshold,
1 otherwise.  Benchmarks present on only one side are listed and
skipped (new or retired benches must not break CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_wall_times(directory: Path) -> dict[str, float]:
    """Map benchmark name -> wall_time_s for every result JSON in ``directory``."""
    out: dict[str, float] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}")
            continue
        name = data.get("name", path.stem)
        wall = data.get("wall_time_s")
        if isinstance(wall, (int, float)) and wall > 0:
            out[name] = float(wall)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory of committed result JSONs (the reference)",
    )
    parser.add_argument(
        "--current", type=Path, required=True,
        help="directory of freshly generated result JSONs",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=2.0,
        help="fail when current/baseline exceeds this (default: 2.0)",
    )
    args = parser.parse_args(argv)

    baseline = load_wall_times(args.baseline)
    current = load_wall_times(args.current)
    common = sorted(set(baseline) & set(current))
    for name in sorted(set(baseline) ^ set(current)):
        side = "baseline" if name in baseline else "current"
        print(f"note: {name} only in {side}; skipped")
    if not common:
        print("no common benchmarks to compare; nothing to gate")
        return 0

    failed = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for name in common:
        ratio = current[name] / baseline[name]
        flag = "  REGRESSION" if ratio > args.max_ratio else ""
        print(
            f"{name:<{width}} {baseline[name]:>9.3f}s {current[name]:>9.3f}s "
            f"{ratio:>6.2f}x{flag}"
        )
        if ratio > args.max_ratio:
            failed.append(name)
    if failed:
        print(
            f"\nFAIL: {len(failed)} benchmark(s) regressed more than "
            f"{args.max_ratio:.1f}x: {', '.join(failed)}"
        )
        return 1
    print(f"\nOK: all {len(common)} benchmarks within {args.max_ratio:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
