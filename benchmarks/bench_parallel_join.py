"""Build-once/probe-parallel hash join at TPC-R SF 0.1.

A join-aggregate in the shape of the paper's experiment view -- PartSupp
joined to Supplier, grouped by ``S.nationkey``, summing
``PS.supplycost`` -- with *no* index on Supplier, so the planner emits a
HashJoin and the parallel executor takes the build-once/probe-parallel
path: the hash table is built exactly once on the coordinator, probe-side
RowBlocks fan out to the pool, and per-worker partial aggregation states
merge on the coordinator (charge-on-merge).

Two different things are asserted, mirroring ``bench_parallel_pipeline``:

* **Equivalence is unconditional.**  Result rows (in order) and the
  simulated cost table must be byte-identical across serial, thread, and
  process modes on any machine -- that is the charge-on-merge invariant.
* **Speedup is conditional on hardware.**  The >= 1.5x gate for the
  process backend at workers = 4 applies only on hosts with >= 4 cores;
  a smaller host records the skip (and its reason) in the results JSON
  instead of failing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from benchmarks._report import report
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import AggregateSpec, JoinSpec, QuerySpec
from repro.tpcr.gen import load_tpcr

SCALE = 0.1  # PartSupp 80k rows, Supplier 1k rows
BLOCK_SIZE = 4_096
REPEATS = 2
WORKERS = 4
SPEEDUP_GATE = 1.5
MIN_CORES_FOR_GATE = 4


def _join_agg_spec() -> QuerySpec:
    return QuerySpec(
        base_alias="PS",
        base_table="partsupp",
        joins=(JoinSpec("S", "supplier", "PS.suppkey", "suppkey"),),
        filters=(col("PS.supplycost") > lit(100.0),),
        aggregate=AggregateSpec(
            func="sum", value=col("PS.supplycost"), group_by=("S.nationkey",)
        ),
    )


def _build(workers: int, backend: str | None) -> Database:
    db = Database(
        block_size=BLOCK_SIZE, workers=workers, parallel_backend=backend
    )
    # Deliberately no index on supplier.suppkey: the planner must pick a
    # hash join (the parallel probe stage), not index nested loops.
    load_tpcr(db, scale=SCALE)
    return db


@dataclass
class ModeRun:
    label: str
    wall_s: float
    rows: list[tuple]
    charges: dict[str, int]


@dataclass
class ParallelJoinResult:
    modes: list[ModeRun]
    cpu_count: int
    gate: str

    def format(self) -> str:
        serial = self.modes[0].wall_s
        lines = [
            f"parallel hash join at SF {SCALE}: PS |x| S, "
            f"sum(supplycost) by nationkey, block_size={BLOCK_SIZE}, "
            f"{REPEATS} runs, {self.cpu_count} cpu core(s)",
            f"{'mode':<12} {'wall_s':>8} {'speedup':>8}",
        ]
        for mode in self.modes:
            lines.append(
                f"{mode.label:<12} {mode.wall_s:>8.3f} "
                f"{serial / mode.wall_s:>7.2f}x"
            )
        lines.append(
            "rows and simulated charges byte-identical across all modes"
        )
        lines.append(f"speedup gate: {self.gate}")
        return "\n".join(lines)


def _measure(label: str, workers: int, backend: str | None) -> ModeRun:
    with _build(workers, backend) as db:
        spec = _join_agg_spec()
        db.execute(spec)  # warm: pool spin-up + kernel compile
        baseline = db.counter.snapshot()
        start = time.perf_counter()
        for _ in range(REPEATS):
            result = db.execute(spec)
        wall = time.perf_counter() - start
        charges = {
            k: v - baseline[k] for k, v in db.counter.snapshot().items()
        }
        return ModeRun(label, wall, result.rows, charges)


def run_parallel_join() -> ParallelJoinResult:
    modes = [
        _measure("serial", 0, None),
        _measure(f"thread x{WORKERS}", WORKERS, "thread"),
        _measure(f"process x{WORKERS}", WORKERS, "process"),
    ]
    serial = modes[0]
    for mode in modes[1:]:
        assert mode.rows == serial.rows, f"{mode.label}: rows diverge"
        assert mode.charges == serial.charges, (
            f"{mode.label}: simulated charges diverge"
        )
    cpu_count = os.cpu_count() or 1
    if cpu_count >= MIN_CORES_FOR_GATE:
        gate = f">= {SPEEDUP_GATE}x required (host has {cpu_count} cores)"
    else:
        gate = (
            f"skipped: host has {cpu_count} core(s), "
            f"gate needs >= {MIN_CORES_FOR_GATE}"
        )
    return ParallelJoinResult(modes, cpu_count=cpu_count, gate=gate)


def bench_parallel_join(run_once):
    result = run_once(run_parallel_join)
    report(
        "parallel_join",
        result.format(),
        params={
            "scale": SCALE,
            "block_size": BLOCK_SIZE,
            "repeats": REPEATS,
            "workers": WORKERS,
            "cpu_count": result.cpu_count,
            "speedup_gate": result.gate,
            "wall_s": {m.label: round(m.wall_s, 4) for m in result.modes},
        },
    )
    serial, thread, process = result.modes
    # Pool overhead stays bounded even on one core.
    assert thread.wall_s < 3.0 * serial.wall_s
    assert process.wall_s < 5.0 * serial.wall_s
    if result.cpu_count >= MIN_CORES_FOR_GATE:
        assert serial.wall_s / process.wall_s >= SPEEDUP_GATE, (
            f"process x{WORKERS} speedup "
            f"{serial.wall_s / process.wall_s:.2f}x below {SPEEDUP_GATE}x "
            f"on a {result.cpu_count}-core host"
        )
