"""Parallel block pipeline: equivalence + wall-clock across backends.

Runs one CPU-heavy scan→filter→project chain (a deep arithmetic
predicate, compiled per block) through the serial blocked engine, the
thread-backend pool, and the process-backend pool, and reports per-mode
wall time and speedup.

Two different things are asserted:

* **Equivalence is unconditional.**  Rows (in order) and the simulated
  cost table must be byte-identical across every mode -- that is the
  charge-on-merge invariant and it holds on any machine.
* **Speedup is conditional on hardware.**  Python threads cannot
  multiply pure-Python kernel time (GIL), so the thread backend is
  measured but not gated.  The process backend is the CPU-bound path;
  its wall-clock win is asserted only when the host actually has
  multiple cores (CI runners do; a 1-core container cannot speed up
  anything and is recorded as such in the results JSON).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from benchmarks._report import report
from repro.engine.database import Database
from repro.engine.expr import col, lit
from repro.engine.query import QuerySpec
from repro.engine.types import ColumnType, Schema

ROWS = 60_000
BLOCK_SIZE = 4_096
PREDICATE_DEPTH = 48  # ~2 ops per level: genuinely CPU-bound per block
REPEATS = 3
WORKERS = 4


def _heavy_spec() -> QuerySpec:
    expr = col("M.val")
    for _ in range(PREDICATE_DEPTH):
        expr = expr * lit(1.0000003) + col("M.k") * lit(0.0001)
    return QuerySpec(
        base_alias="M",
        base_table="m",
        filters=(expr > lit(49.0),),
        projection=("M.id", "M.val"),
    )


def _build(workers: int, backend: str | None) -> Database:
    db = Database(
        block_size=BLOCK_SIZE, workers=workers, parallel_backend=backend
    )
    table = db.create_table(
        "m",
        Schema.of(id=ColumnType.INT, k=ColumnType.INT, val=ColumnType.FLOAT),
    )
    for i in range(ROWS):
        table.insert((i, i % 97, (i * 37 % 1000) / 10.0))
    return db


@dataclass
class ModeRun:
    label: str
    wall_s: float
    rows: list[tuple]
    charges: dict[str, int]


@dataclass
class ParallelPipelineResult:
    modes: list[ModeRun]
    cpu_count: int

    def format(self) -> str:
        serial = self.modes[0].wall_s
        lines = [
            f"parallel block pipeline: {ROWS} rows, block_size={BLOCK_SIZE}, "
            f"{PREDICATE_DEPTH * 2}-op predicate, {REPEATS} runs, "
            f"{self.cpu_count} cpu core(s)",
            f"{'mode':<12} {'wall_s':>8} {'speedup':>8}",
        ]
        for mode in self.modes:
            lines.append(
                f"{mode.label:<12} {mode.wall_s:>8.3f} "
                f"{serial / mode.wall_s:>7.2f}x"
            )
        lines.append(
            "rows and simulated charges byte-identical across all modes"
        )
        return "\n".join(lines)


def _measure(label: str, workers: int, backend: str | None) -> ModeRun:
    with _build(workers, backend) as db:
        spec = _heavy_spec()
        db.execute(spec)  # warm: pool spin-up + kernel compile
        baseline = db.counter.snapshot()
        start = time.perf_counter()
        for _ in range(REPEATS):
            result = db.execute(spec)
        wall = time.perf_counter() - start
        charges = {
            k: v - baseline[k] for k, v in db.counter.snapshot().items()
        }
        return ModeRun(label, wall, result.rows, charges)


def run_parallel_pipeline() -> ParallelPipelineResult:
    modes = [
        _measure("serial", 0, None),
        _measure(f"thread x{WORKERS}", WORKERS, "thread"),
        _measure(f"process x{WORKERS}", WORKERS, "process"),
    ]
    serial = modes[0]
    for mode in modes[1:]:
        assert mode.rows == serial.rows, f"{mode.label}: rows diverge"
        assert mode.charges == serial.charges, (
            f"{mode.label}: simulated charges diverge"
        )
    return ParallelPipelineResult(modes, cpu_count=os.cpu_count() or 1)


def bench_parallel_pipeline(run_once):
    result = run_once(run_parallel_pipeline)
    report(
        "parallel_pipeline",
        result.format(),
        params={
            "rows": ROWS,
            "block_size": BLOCK_SIZE,
            "predicate_depth": PREDICATE_DEPTH,
            "repeats": REPEATS,
            "workers": WORKERS,
            "cpu_count": result.cpu_count,
            "wall_s": {m.label: round(m.wall_s, 4) for m in result.modes},
        },
    )
    serial, thread, process = result.modes
    # The pool must never cost an order of magnitude: even on one core,
    # scheduling + IPC overhead stays bounded.
    assert thread.wall_s < 3.0 * serial.wall_s
    assert process.wall_s < 5.0 * serial.wall_s
    if result.cpu_count >= 2:
        # With real cores, the process backend must beat serial on this
        # CPU-bound chain (loose bound: shared CI runners are noisy).
        assert process.wall_s < serial.wall_s
