"""Closed-loop controller ablation: does each governor earn its keep?

Runs :func:`repro.control.ablation.run_control_ablation` -- baseline
(no controller), the full loop, and one run per disabled governor over
the identical bursty SLO-pressure workload -- and asserts the loop's
load-bearing claims:

* with all governors on, SLO breaches land strictly below baseline;
* disabling the policy governor gives the breaches back (it is the
  breach-cutting governor, and the ranking says so);
* no variant ever changes view contents -- the controller moves
  scheduling and physical knobs, never results.

The wall-time column is reported but not asserted: on a small container
the worker/block governors' wall effects are within noise.
"""

from benchmarks._report import report
from repro.control.ablation import run_control_ablation


def bench_control_ablation(run_once):
    result = run_once(run_control_ablation, horizon=120)
    report("ablation_control", result.format(), params=result.params)
    baseline = result.variants["baseline"]
    full = result.variants["full"]
    assert full.breaches < baseline.breaches
    assert result.variants["no-policy"].breaches >= full.breaches
    assert all(
        run.view_contents == baseline.view_contents
        for run in result.variants.values()
    )
    assert result.ranking()[0][0] == "policy"
    # The audit trail is complete: every variant that ran with the
    # policy governor enabled records its switch as a ControlEvent.
    assert any(e.governor == "policy" for e in full.events)
    assert not baseline.events
