"""Future-work bench: empirical competitive ratio of the ONLINE heuristic."""

from benchmarks._report import report
from repro.experiments.online_bound_study import run_online_bound_study


def bench_online_bound_study(run_once):
    result = run_once(run_online_bound_study)
    report("online_bound_study", result.format())
    # Empirically bounded well inside the factor-2 LGM envelope on every
    # family we sample, but demonstrably not ~1.0 in general.
    assert result.worst_ratio < 2.0
    for __, online_mean, __, __, __ in result.rows():
        assert online_mean < 1.5
