"""Figure 1: batch cost functions of the two-way join R |x| S.

Regenerates the paper's motivating figure: the indexed side's delta cost
is linear through the origin, the unindexed side's is setup-dominated.
"""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.fig1_join_costs import run_fig1


def bench_fig1_join_costs(run_once):
    result = run_once(run_fig1)
    report(
        "fig1_join_costs", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # Paper shape: the expensive curve is setup-dominated.
    assert result.setup_ratio() > 5.0
    rows = result.rows()
    assert all(cost_r > cost_s for __, cost_r, cost_s in rows)
