"""Ablation benches for the design choices DESIGN.md calls out."""

from benchmarks._report import report
from repro.experiments.ablations import (
    run_astar_heuristic_ablation,
    run_cost_family_study,
    run_estimator_ablation,
    run_plan_class_ablation,
)


def bench_astar_heuristic(run_once):
    result = run_once(run_astar_heuristic_ablation)
    report("ablation_astar_heuristic", result.format())
    assert result.costs_equal
    # The heuristic must help, and increasingly so with horizon length.
    ratios = [
        d / a for a, d in zip(result.astar_expanded, result.dijkstra_expanded)
    ]
    assert all(r >= 1.0 for r in ratios)
    assert ratios[-1] > 2.0


def bench_plan_class(run_once):
    result = run_once(run_plan_class_ablation)
    report("ablation_plan_class", result.format())
    # Each LGM ingredient buys cost: EAGER > NAIVE > OPT_LGM.
    assert result.eager > result.naive > result.opt_lgm


def bench_estimators(run_once):
    result = run_once(run_estimator_ablation)
    report("ablation_estimators", result.format())
    for row in result.ratios:
        for ratio in row:
            assert ratio < 1.5


def bench_cost_families(run_once):
    result = run_once(run_cost_family_study)
    report("ablation_cost_families", result.format())
    rows = {name: ratio for name, __, __, ratio in result.rows()}
    assert rows["linear b=120"] > rows["linear b=40"]
