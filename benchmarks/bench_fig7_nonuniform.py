"""Figure 7: the four non-uniform arrival streams (SS/SU/FS/FU)."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.fig7_nonuniform import run_fig7


def bench_fig7_nonuniform(run_once):
    result = run_once(run_fig7)
    report(
        "fig7_nonuniform", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # Paper shape: NAIVE loses on all four streams; ONLINE stays within a
    # modest factor of OPT_LGM.
    for naive, opt in zip(result.naive, result.opt_lgm):
        assert naive > 1.1 * opt
    for cls in result.classes:
        assert result.online_gap(cls) < 1.2
