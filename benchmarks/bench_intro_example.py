"""Section 1's motivating numbers: symmetric vs asymmetric cost per
modification (paper: 0.97 ms vs 0.42 ms, a ~2.3x factor)."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.intro_example import run_intro_example


def bench_intro_example(run_once):
    result = run_once(run_intro_example)
    report(
        "intro_example", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # The reproduced quantity is the improvement factor's order: >= ~1.5x.
    assert result.analytic_factor > 1.5
    assert result.simulated_factor > 1.5
