"""Aggregate ``benchmarks/results/*.json`` into a perf-trajectory dashboard.

Every benchmark persists ``{name, params, metrics, wall_time_s}`` (see
``benchmarks/_report.py``); this script folds the whole directory into
one markdown (and optionally HTML) dashboard:

* a **wall-time table** across all benchmarks -- the headline trajectory;
* a **key-metric table** (planner expansions, engine row volume, block
  fill, IVM flushes, SLO breaches) so a wall-time swing can be traced to
  the work volume that moved;
* a **calibration table** (cost-model residuals, drift alerts) for runs
  that traced planner decisions (``planner.calibration.*`` metrics);
* a **top-operators table** folding every benchmark's per-operator
  ``profile`` section (rows, simulated and wall cost per operator kind)
  -- which plan operators the whole suite actually spends on;
* per-benchmark parameter lines for context.

CI runs it in the benchmark-smoke job and uploads the dashboard as a
workflow artifact, so the perf trajectory is diffable PR-to-PR: download
two artifacts, ``diff`` the markdown.

Usage::

    PYTHONPATH=src python benchmarks/report_trajectory.py \
        [--results benchmarks/results] [--out trajectory.md] [--html trajectory.html]

With no ``--out``/``--html`` the markdown goes to stdout.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path
from typing import Any, Iterable

RESULTS_DIR = Path(__file__).parent / "results"

#: Metrics promoted into the cross-benchmark key-metric table, with the
#: snapshot field to read and a short column label.
KEY_METRICS: tuple[tuple[str, str, str], ...] = (
    ("astar.expanded", "value", "A* expanded"),
    ("engine.rows_out", "value", "rows out"),
    ("engine.block.blocks", "value", "blocks"),
    ("engine.block.fill", "mean", "fill (mean)"),
    ("engine.block.low_fill", "value", "low-fill"),
    ("ivm.flushes", "value", "flushes"),
    ("ivm.modifications_applied", "value", "mods applied"),
    ("simulator.steps", "value", "sim steps"),
    ("slo.breaches", "value", "SLO breaches"),
)


def load_results(results_dir: str | Path) -> list[dict]:
    """Parse every ``*.json`` result, sorted by benchmark name.

    Files that do not look like benchmark results (missing ``name``) are
    skipped with a warning on stderr rather than failing the dashboard.
    """
    results = []
    for path in sorted(Path(results_dir).glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[trajectory] skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if not isinstance(payload, dict) or "name" not in payload:
            print(
                f"[trajectory] skipping {path.name}: not a benchmark result",
                file=sys.stderr,
            )
            continue
        results.append(payload)
    return sorted(results, key=lambda r: r["name"])


def _metric_value(metrics: dict, name: str, field: str) -> Any:
    state = metrics.get(name)
    if not isinstance(state, dict):
        return None
    return state.get(field)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _markdown_table(headers: list[str], rows: Iterable[list[str]]) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def build_dashboard(results: list[dict]) -> str:
    """The whole dashboard as one markdown document."""
    lines = [
        "# Benchmark trajectory",
        "",
        f"{len(results)} benchmark result(s) aggregated from "
        "`benchmarks/results/*.json`.  Regenerate with "
        "`PYTHONPATH=src python benchmarks/report_trajectory.py`.",
        "",
        "## Wall time",
        "",
    ]
    wall_rows = []
    for result in results:
        wall = result.get("wall_time_s")
        params = result.get("params") or {}
        param_text = (
            ", ".join(f"{k}={v}" for k, v in sorted(params.items())) or "-"
        )
        if len(param_text) > 80:
            param_text = param_text[:77] + "..."
        wall_rows.append(
            [
                result["name"],
                _fmt(wall if wall is None else float(wall)),
                param_text,
            ]
        )
    lines += _markdown_table(["benchmark", "wall time (s)", "params"], wall_rows)

    lines += ["", "## Key metrics", ""]
    headers = ["benchmark"] + [label for _, _, label in KEY_METRICS]
    metric_rows = []
    for result in results:
        metrics = result.get("metrics") or {}
        metric_rows.append(
            [result["name"]]
            + [
                _fmt(_metric_value(metrics, name, field))
                for name, field, _ in KEY_METRICS
            ]
        )
    lines += _markdown_table(headers, metric_rows)

    calib_rows = []
    for result in results:
        metrics = result.get("metrics") or {}
        samples = _metric_value(metrics, "planner.calibration.samples", "value")
        if not samples:
            continue
        calib_rows.append(
            [
                result["name"],
                _fmt(samples),
                _fmt(
                    _metric_value(
                        metrics, "planner.decisions.emitted", "value"
                    )
                ),
                _fmt(
                    _metric_value(metrics, "planner.calibration.abs_err_ms", "p50")
                ),
                _fmt(
                    _metric_value(metrics, "planner.calibration.abs_err_ms", "p95")
                ),
                _fmt(
                    _metric_value(metrics, "planner.calibration.rel_err", "p50")
                ),
                _fmt(
                    _metric_value(metrics, "planner.calibration.rel_err", "p95")
                ),
                _fmt(
                    _metric_value(metrics, "planner.calibration.residual", "mean")
                ),
                _fmt(
                    _metric_value(
                        metrics, "planner.calibration.drift_alerts", "value"
                    )
                ),
            ]
        )
    if calib_rows:
        lines += [
            "",
            "## Calibration",
            "",
            "Cost-model calibration residuals (`actual - predicted` per "
            "flush) from runs that traced planner decisions — a drifting "
            "p95 here means the `f_i(k)` tables no longer match the "
            "simulated engine.",
            "",
        ]
        lines += _markdown_table(
            [
                "benchmark",
                "samples",
                "decisions",
                "abs err p50 (ms)",
                "abs err p95 (ms)",
                "rel err p50",
                "rel err p95",
                "residual mean (ms)",
                "drift alerts",
            ],
            calib_rows,
        )

    operators: dict[str, dict[str, float]] = {}
    profiled_queries = 0
    for result in results:
        profile = result.get("profile") or {}
        profiled_queries += profile.get("queries", 0)
        for kind, entry in (profile.get("operators") or {}).items():
            totals = operators.setdefault(
                kind, {"nodes": 0, "rows_out": 0, "sim_ms": 0.0, "wall_ms": 0.0}
            )
            for key in totals:
                totals[key] += entry.get(key, 0)
    if operators:
        lines += [
            "",
            "## Top operators",
            "",
            f"Per-operator attribution folded over {profiled_queries:,} "
            "profiled queries (see `profile` in each result JSON).",
            "",
        ]
        op_rows = [
            [
                kind,
                _fmt(int(totals["nodes"])),
                _fmt(int(totals["rows_out"])),
                _fmt(totals["sim_ms"]),
                _fmt(totals["wall_ms"]),
            ]
            for kind, totals in sorted(
                operators.items(), key=lambda kv: -kv[1]["sim_ms"]
            )
        ]
        lines += _markdown_table(
            ["operator", "nodes", "rows out", "sim ms", "wall ms"], op_rows
        )

    total_wall = sum(
        float(r["wall_time_s"])
        for r in results
        if r.get("wall_time_s") is not None
    )
    lines += [
        "",
        f"Total recorded wall time: **{total_wall:,.2f} s** across "
        f"{len(results)} benchmark(s).",
        "",
    ]
    return "\n".join(lines)


def render_html(markdown: str, title: str = "Benchmark trajectory") -> str:
    """A dependency-free HTML rendering of the dashboard's tables.

    Understands exactly the subset :func:`build_dashboard` emits
    (headings, paragraphs, pipe tables) -- not a general markdown engine.
    """
    body: list[str] = []
    table: list[str] = []

    def flush_table() -> None:
        if not table:
            return
        body.append("<table>")
        for i, row in enumerate(table):
            cells = [c.strip() for c in row.strip().strip("|").split("|")]
            tag = "th" if i == 0 else "td"
            body.append(
                "<tr>"
                + "".join(f"<{tag}>{html.escape(c)}</{tag}>" for c in cells)
                + "</tr>"
            )
        body.append("</table>")
        table.clear()

    for line in markdown.splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            if set(stripped) <= {"|", "-", " "}:
                continue  # the separator row
            table.append(stripped)
            continue
        flush_table()
        if stripped.startswith("## "):
            body.append(f"<h2>{html.escape(stripped[3:])}</h2>")
        elif stripped.startswith("# "):
            body.append(f"<h1>{html.escape(stripped[2:])}</h1>")
        elif stripped:
            body.append(f"<p>{html.escape(stripped)}</p>")
    flush_table()
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:4px 10px;text-align:right}"
        "th:first-child,td:first-child{text-align:left}</style>"
        "</head><body>" + "\n".join(body) + "</body></html>\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate benchmarks/results/*.json into a dashboard"
    )
    parser.add_argument(
        "--results",
        default=str(RESULTS_DIR),
        help="results directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--out", help="write the markdown dashboard here (default: stdout)"
    )
    parser.add_argument("--html", help="also write an HTML rendering here")
    args = parser.parse_args(argv)

    results = load_results(args.results)
    if not results:
        print(f"error: no benchmark results under {args.results!r}", file=sys.stderr)
        return 1
    markdown = build_dashboard(results)
    if args.out:
        Path(args.out).write_text(markdown + "\n")
        print(f"[trajectory] wrote {args.out}", file=sys.stderr)
    else:
        print(markdown)
    if args.html:
        Path(args.html).write_text(render_html(markdown))
        print(f"[trajectory] wrote {args.html}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
