"""Fleet-scale multi-view maintenance: per-view cost vs view count.

The economics claimed by the table-at-a-time refactor
(:mod:`repro.ivm.multiview`): when many views window the same base
table's ModLog, one shared blocked scan per table per round replaces a
per-view scan, and update windows that miss a view's referenced columns
are fingerprint-suppressed before the view's delta-join runs.  Both
savings grow with views-per-table, so the **per-view** simulated cost of
a shared round falls as the fleet grows, while independent
view-at-a-time rounds stay flat.

This benchmark sweeps views-per-table over three TPC-R base tables
(partsupp, supplier, nation -- each with its own single-column updater)
up to ~2,000 views total, maintaining each fleet for a few rounds under
both modes, and reports total and per-view simulated cost side by side.
Views alternate between a spec that references the updated column
(must re-join every round) and one that does not (suppressible), the mix
a real dashboard fleet would have.

Asserted invariants:

* view contents are identical between shared and independent rounds at
  every swept fleet size;
* per-view shared cost **strictly decreases** as views-per-table grows;
* shared total cost is strictly below independent total cost at every
  point with >= 2 views per table (with a lone subscriber per table the
  two modes do the same scan work, so only the larger fleets are gated).
"""

from __future__ import annotations

from dataclasses import dataclass

from benchmarks._report import report
from repro.core.costfuncs import LinearCost
from repro.core.naive import NaivePolicy
from repro.engine.database import Database
from repro.engine.expr import col
from repro.engine.query import AggregateSpec, QuerySpec
from repro.ivm.multiview import MaintenanceCoordinator, ViewConfig
from repro.tpcr.gen import load_tpcr
from repro.tpcr.updates import (
    NationRegionUpdater,
    PartSuppCostUpdater,
    SupplierNationUpdater,
)

SCALE = 0.002  # partsupp 1.6k rows -- the sweep is about view count
BLOCK_SIZE = 4_096
ROUNDS = 4
MODS_PER_ROUND = 16  # per table per round
SWEEP = (1, 8, 64, 666)  # views per table; 666 x 3 tables ~ 2,000 views
COST = (LinearCost(slope=0.5, setup=2.0),)
LIMIT = 1.0  # NaivePolicy: any non-empty backlog flushes


def _agg(alias: str, table: str, func: str, value: str, *group: str) -> QuerySpec:
    return QuerySpec(
        base_alias=alias,
        base_table=table,
        aggregate=AggregateSpec(
            func=func, value=col(value), group_by=tuple(group)
        ),
    )


#: (alias, table, updater, sensitive spec, insensitive spec).  Each
#: updater rewrites exactly one column; the sensitive spec references it
#: (delta-join every flush), the insensitive one does not (the shared
#: scan's fingerprint suppresses the whole window).
TABLES = (
    (
        "PS",
        "partsupp",
        PartSuppCostUpdater,  # rewrites supplycost
        lambda: _agg("PS", "partsupp", "sum", "PS.supplycost", "PS.suppkey"),
        lambda: _agg("PS", "partsupp", "sum", "PS.availqty", "PS.suppkey"),
    ),
    (
        "S",
        "supplier",
        SupplierNationUpdater,  # rewrites nationkey
        lambda: _agg("S", "supplier", "count", "S.suppkey", "S.nationkey"),
        # sum over an INT column: float sums drift across the
        # delete-then-reinsert round-trip of unsuppressed rounds, which
        # would make the cross-mode contents equality flap.
        lambda: _agg("S", "supplier", "sum", "S.suppkey"),
    ),
    (
        "N",
        "nation",
        NationRegionUpdater,  # rewrites regionkey
        lambda: _agg("N", "nation", "count", "N.name", "N.regionkey"),
        lambda: _agg("N", "nation", "min", "N.nationkey"),
    ),
)


@dataclass
class SweepPoint:
    views_per_table: int
    total_views: int
    shared_ms: float
    independent_ms: float

    @property
    def shared_per_view(self) -> float:
        return self.shared_ms / self.total_views

    @property
    def independent_per_view(self) -> float:
        return self.independent_ms / self.total_views


@dataclass
class MultiviewScaleResult:
    points: list[SweepPoint]

    def format(self) -> str:
        lines = [
            f"multi-view maintenance at SF {SCALE}: 3 base tables, "
            f"{ROUNDS} rounds x {MODS_PER_ROUND} updates/table/round, "
            f"NaivePolicy, simulated ms",
            f"{'views/table':>11} {'views':>6} "
            f"{'shared':>10} {'indep':>10} "
            f"{'shared/view':>12} {'indep/view':>11}",
        ]
        for p in self.points:
            lines.append(
                f"{p.views_per_table:>11} {p.total_views:>6} "
                f"{p.shared_ms:>10.2f} {p.independent_ms:>10.2f} "
                f"{p.shared_per_view:>12.4f} {p.independent_per_view:>11.4f}"
            )
        lines.append(
            "contents identical between modes at every point; per-view "
            "shared cost falls as views-per-table rises"
        )
        return "\n".join(lines)


def _run_fleet(views_per_table: int, shared: bool) -> tuple[dict, float]:
    """Maintain one fleet; returns (per-view contents, total sim ms)."""
    db = Database(block_size=BLOCK_SIZE)
    load_tpcr(db, scale=SCALE)
    coordinator = MaintenanceCoordinator(db, shared_scans=shared)
    for alias, table, _, sensitive, insensitive in TABLES:
        for i in range(views_per_table):
            spec = sensitive() if i % 2 == 0 else insensitive()
            coordinator.add_view(
                ViewConfig(
                    name=f"{table}_{i:04d}",
                    query=spec,
                    policy=NaivePolicy(),
                    cost_functions=COST,
                    limit=LIMIT,
                    scheduled_aliases=(alias,),
                )
            )
    updaters = [
        updater(db.table(table), seed=17)
        for _, table, updater, _, _ in TABLES
    ]
    total = 0.0
    for t in range(ROUNDS):
        for updater in updaters:
            updater.apply(MODS_PER_ROUND)
        with db.counter.window() as window:
            coordinator.step(t)
        total += window.elapsed_ms
    contents = {
        name: maintainer.view.contents()
        for name, maintainer in coordinator.iter_maintainers()
    }
    return contents, total


def run_multiview_scale() -> MultiviewScaleResult:
    points = []
    for views_per_table in SWEEP:
        shared_contents, shared_ms = _run_fleet(views_per_table, shared=True)
        ind_contents, independent_ms = _run_fleet(views_per_table, shared=False)
        assert shared_contents == ind_contents, (
            f"contents diverge at {views_per_table} views/table"
        )
        points.append(
            SweepPoint(
                views_per_table=views_per_table,
                total_views=3 * views_per_table,
                shared_ms=shared_ms,
                independent_ms=independent_ms,
            )
        )
    return MultiviewScaleResult(points)


def bench_multiview_scale(run_once):
    result = run_once(run_multiview_scale)
    report(
        "multiview_scale",
        result.format(),
        params={
            "scale": SCALE,
            "block_size": BLOCK_SIZE,
            "rounds": ROUNDS,
            "mods_per_round": MODS_PER_ROUND,
            "views_per_table": list(SWEEP),
            "per_view_sim_ms": {
                str(p.total_views): {
                    "shared": round(p.shared_per_view, 6),
                    "independent": round(p.independent_per_view, 6),
                }
                for p in result.points
            },
        },
    )
    per_view = [p.shared_per_view for p in result.points]
    assert all(a > b for a, b in zip(per_view, per_view[1:])), (
        f"per-view shared cost not strictly decreasing: {per_view}"
    )
    for p in result.points:
        if p.views_per_table >= 2:
            assert p.shared_ms < p.independent_ms, (
                f"shared rounds not cheaper at {p.views_per_table} "
                f"views/table: {p.shared_ms} vs {p.independent_ms}"
            )
