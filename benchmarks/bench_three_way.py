"""Extension bench: n = 3 asymmetric scheduling on the live TPC-R view."""

from benchmarks._report import report
from repro.experiments import common
from repro.experiments.three_way import run_three_way


def bench_three_way(run_once):
    result = run_once(run_three_way)
    report(
        "three_way", result.format(),
        params={"scale": common.DEFAULT_SCALE},
    )
    # The asymmetric advantage persists at n = 3.
    assert result.naive_cost > 1.4 * result.opt_cost
    # Flush frequency tracks the cost hierarchy: cheap stream flushed
    # most, the most expensive one least.
    ps_flushes, s_flushes, n_flushes = result.opt_action_counts
    assert ps_flushes > s_flushes >= n_flushes
    # ONLINE stays well inside the LGM factor-2 envelope.
    assert result.online_cost < 1.5 * result.opt_cost
