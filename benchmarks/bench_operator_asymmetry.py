"""Future-work bench: operator-level asymmetric batching (Section 7)."""

from benchmarks._report import report
from repro.experiments.operator_asymmetry import run_operator_asymmetry


def bench_operator_asymmetry(run_once):
    result = run_once(run_operator_asymmetry)
    report("operator_asymmetry", result.format())
    # Batching in front of the setup-heavy operator must beat both
    # whole-pipeline batching and eager propagation through it.
    assert result.best_cut >= 1
    assert result.naive_cost > 1.2 * result.best_cost
    deep_costs = [cost for cut, cost in result.cut_costs if cut >= 2]
    assert all(cost > result.naive_cost for cost in deep_costs)
