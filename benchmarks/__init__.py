"""Benchmark suite: one module per paper table/figure plus extensions.

A package so `pytest benchmarks/ --benchmark-only` resolves the shared
`benchmarks._report` helper regardless of how pytest was invoked.
"""
