"""Bounds table: OPT_LGM vs the globally optimal plan (Theorems 1 and 2
plus the Section 3.2 tightness construction)."""

import pytest

from benchmarks._report import report
from repro.experiments.bounds_study import run_bounds_study


def bench_bounds_study(run_once):
    result = run_once(run_bounds_study)
    report("bounds_study", result.format())
    assert result.max_ratio("linear") == pytest.approx(1.0)  # Theorem 2
    for row in result.rows_data:  # Theorem 1
        assert row.ratio <= 2.0 + 1e-9
    # Tightness construction approaches (2 - eps).
    assert result.max_ratio("step (tightness)") >= 1.8 - 1e-9
