"""RowBlock size sweep on the three_way engine workload.

``DEFAULT_BLOCK_SIZE`` must be a measured choice, not a guess.  This
bench runs the engine-dominated portion of the three_way experiment --
building the TPC-R database and calibrating both maintenance cost curves
(a few hundred live maintenance batches through scans, joins, and
aggregation) -- once per candidate block size, plus once in row-at-a-time
mode as the reference, and records the wall time of each.

Two invariants are asserted while sweeping:

* every block size produces the **identical simulated cost tables** (the
  charging invariant of the chunked pipeline);
* the blocked engine at the default size is not slower than the row
  engine (the refactor pays for itself on the workload it was built for).

The structured results land in ``results/block_size_sweep.json`` under
``params.sweep``; ``docs/DESIGN.md`` quotes the conclusion.
"""

from __future__ import annotations

import time

from benchmarks._report import report
from repro.engine.block import DEFAULT_BLOCK_SIZE
from repro.experiments import common
from repro.ivm.calibration import measure_cost_function

#: Candidate sizes: powers of two around the expected plateau plus the
#: degenerate 1 (blocked plumbing at row granularity, the overhead floor).
SWEEP_SIZES: tuple[int | None, ...] = (None, 1, 16, 64, 128, 256, 512, 1024)

#: A reduced calibration sweep: enough batches to dominate on engine work
#: while keeping the whole sweep in benchmark-smoke territory.
BATCHES = (1, 5, 25, 100, 200)


def _run_workload(block_size: int | None) -> tuple[float, float, dict]:
    """One calibration workload at ``block_size``; returns (wall seconds,
    simulated cost of the sweep, the measured samples)."""
    setup = common.build_setup(update_seed=991, block_size=block_size)
    start = time.perf_counter()
    cal_ps = measure_cost_function(setup.view, "PS", BATCHES, setup.ps_updater)
    cal_s = measure_cost_function(setup.view, "S", BATCHES, setup.supplier_updater)
    wall = time.perf_counter() - start
    samples = {
        "PS": dict(cal_ps.samples),
        "S": dict(cal_s.samples),
    }
    sim_total = sum(c for __, c in cal_ps.samples) + sum(
        c for __, c in cal_s.samples
    )
    return wall, sim_total, samples


def _format(rows: list[dict]) -> str:
    lines = [
        "RowBlock size sweep -- three_way calibration workload",
        "",
        f"{'block size':>12} {'wall (s)':>10} {'vs rows':>9} {'sim cost (ms)':>14}",
    ]
    row_wall = next(r["wall_s"] for r in rows if r["block_size"] is None)
    for r in rows:
        label = "rows" if r["block_size"] is None else str(r["block_size"])
        speedup = row_wall / r["wall_s"] if r["wall_s"] else float("inf")
        lines.append(
            f"{label:>12} {r['wall_s']:>10.3f} {speedup:>8.2f}x "
            f"{r['sim_cost_ms']:>14.3f}"
        )
    lines.append("")
    lines.append(
        f"default block size: {DEFAULT_BLOCK_SIZE} "
        "(first size on the wall-time plateau)"
    )
    return "\n".join(lines)


def bench_block_size_sweep(run_once):
    def sweep() -> list[dict]:
        rows = []
        for size in SWEEP_SIZES:
            wall, sim, samples = _run_workload(size)
            rows.append(
                {
                    "block_size": size,
                    "wall_s": round(wall, 4),
                    "sim_cost_ms": round(sim, 6),
                    "samples": samples,
                }
            )
        return rows

    rows = run_once(sweep)

    # Charging invariant: simulated costs identical across every mode.
    reference = rows[0]
    for r in rows[1:]:
        assert r["samples"] == reference["samples"], (
            f"simulated costs diverge at block_size={r['block_size']}"
        )

    by_size = {r["block_size"]: r["wall_s"] for r in rows}
    report(
        "block_size_sweep",
        _format(rows),
        params={
            "default_block_size": DEFAULT_BLOCK_SIZE,
            "batches": list(BATCHES),
            "scale": common.DEFAULT_SCALE,
            "sweep": [
                {k: r[k] for k in ("block_size", "wall_s", "sim_cost_ms")}
                for r in rows
            ],
        },
    )
    # The default must sit on the fast side of the sweep.
    assert by_size[DEFAULT_BLOCK_SIZE] <= by_size[None] * 1.1
