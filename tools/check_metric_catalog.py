#!/usr/bin/env python
"""Lint: every metric name emitted in ``src/`` is documented, and vice versa.

The metric catalog in ``docs/observability.md`` is the contract for every
dashboard and scraper pointed at this code; a metric renamed in source
but not in the docs (or documented but no longer emitted) silently rots
that contract.  This script cross-checks the two:

* **emitted names** -- every string constant in ``src/**/*.py`` shaped
  like a dotted metric name in one of the known families (``astar.``,
  ``online.``, ``simulator.``, ``engine.``, ``ivm.``, ``slo.``,
  ``cli.``), collected with :mod:`ast` so multi-line calls and dict-key
  tallies are seen too.  F-strings contribute patterns: each formatted
  value becomes ``*`` (``f"ivm.view.{vid}.rounds"`` -> ``ivm.view.*.rounds``).
* **documented names** -- the first cell of every catalog table row in
  the docs, split on ``/``; ``<placeholder>`` segments become ``*``.

Failures:

* **undocumented** -- an emitted name no documented pattern matches;
* **stale** -- a documented name no emitted name matches.

Exit status 0 when the catalog and the source agree, 1 otherwise.
Run from the repository root (CI does)::

    python tools/check_metric_catalog.py
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
DOCS = ROOT / "docs" / "observability.md"

#: First dotted segments that mark a string as a metric name.
FAMILIES = (
    "astar", "online", "simulator", "engine", "ivm", "slo", "cli",
    "planner", "control",
)

#: A whole-string dotted metric name (``*`` allowed for f-string holes).
_NAME_RE = re.compile(
    r"^(?:%s)(\.[A-Za-z0-9_*-]+)+$" % "|".join(FAMILIES)
)

#: A documented name: backticked first cell of a catalog table row.
_DOC_ROW_RE = re.compile(r"^\|\s*(`[^|]+?`)\s*\|")
_BACKTICK_RE = re.compile(r"`([^`]+)`")


def _display(path: Path) -> str:
    """A path relative to the repo root when possible (absolute otherwise,
    e.g. when linting a synthetic tree in tests)."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def _fstring_pattern(node: ast.JoinedStr) -> str:
    """An f-string rendered as a glob: formatted values become ``*``."""
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            parts.append("*")
    return "".join(parts)


def emitted_names(src: Path = SRC) -> dict[str, list[str]]:
    """Metric-name-shaped strings in the source tree -> emitting files."""
    found: dict[str, list[str]] = {}
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = _display(path)
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                candidate = node.value
            elif isinstance(node, ast.JoinedStr):
                candidate = _fstring_pattern(node)
            else:
                continue
            if _NAME_RE.match(candidate):
                found.setdefault(candidate, []).append(rel)
    return found


def documented_names(docs: Path = DOCS) -> dict[str, int]:
    """Catalog names (as glob patterns) -> line number in the docs."""
    names: dict[str, int] = {}
    for lineno, line in enumerate(docs.read_text().splitlines(), start=1):
        row = _DOC_ROW_RE.match(line.strip())
        if row is None:
            continue
        for ticked in _BACKTICK_RE.findall(row.group(1)):
            # ``<id>``-style placeholders match any one segment.
            pattern = re.sub(r"<[^>]+>", "*", ticked.strip())
            if _NAME_RE.match(pattern):
                names.setdefault(pattern, lineno)
    return names


def check(src: Path = SRC, docs: Path = DOCS) -> list[str]:
    """All catalog violations, as printable messages (empty = clean)."""
    emitted = emitted_names(src)
    documented = documented_names(docs)
    problems = []
    for name, files in sorted(emitted.items()):
        # An emitted pattern matches a documented pattern when either
        # side's globbing covers the other (f-string hole vs. <id>).
        if not any(
            fnmatch.fnmatchcase(name, doc) or fnmatch.fnmatchcase(doc, name)
            for doc in documented
        ):
            problems.append(
                f"undocumented metric {name!r} (emitted in {files[0]}); "
                f"add it to {_display(docs)}"
            )
    for doc, lineno in sorted(documented.items()):
        if not any(
            fnmatch.fnmatchcase(name, doc) or fnmatch.fnmatchcase(doc, name)
            for name in emitted
        ):
            problems.append(
                f"stale catalog entry {doc!r} "
                f"({_display(docs)}:{lineno}): no source emits it"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default=str(SRC))
    parser.add_argument("--docs", default=str(DOCS))
    args = parser.parse_args(argv)
    problems = check(Path(args.src), Path(args.docs))
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print(
            f"\n{len(problems)} metric-catalog problem(s); see "
            f"docs/observability.md 'Metric catalog'",
            file=sys.stderr,
        )
        return 1
    emitted = len(emitted_names(Path(args.src)))
    print(f"metric catalog OK: {emitted} emitted name(s) all documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
